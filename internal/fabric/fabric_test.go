package fabric

import "testing"

func TestLatencyModels(t *testing.T) {
	if Latency(Crossbar, 1) != 0 || Latency(Bus, 1) != 0 {
		t.Error("single LC needs no fabric")
	}
	if Latency(Crossbar, 16) != 2 {
		t.Errorf("crossbar(16) = %d, want 2 (10 ns)", Latency(Crossbar, 16))
	}
	if Latency(Bus, 4) >= Latency(Bus, 32) {
		t.Error("bus latency must grow with size")
	}
	// Multistage: 4 LCs -> 1 stage, 16 -> 2 stages, 64 -> 3 stages.
	if Latency(Multistage, 4) != 2 || Latency(Multistage, 16) != 3 || Latency(Multistage, 64) != 4 {
		t.Errorf("multistage = %d/%d/%d", Latency(Multistage, 4), Latency(Multistage, 16), Latency(Multistage, 64))
	}
}

func TestKindString(t *testing.T) {
	if Bus.String() != "bus" || Crossbar.String() != "crossbar" || Multistage.String() != "multistage" {
		t.Error("kind names wrong")
	}
	if Kind(9).String() == "" {
		t.Error("unknown kind should still render")
	}
}

func TestMsgKindString(t *testing.T) {
	if Request.String() != "request" || Reply.String() != "reply" || Heartbeat.String() != "heartbeat" {
		t.Error("msg kind names wrong")
	}
	if MsgKind(9).String() == "" {
		t.Error("unknown msg kind should still render")
	}
}

func TestPipeDelivery(t *testing.T) {
	p := NewPipe(3)
	p.Send(10, Message{PacketID: 1})
	p.Send(11, Message{PacketID: 2})
	if got := p.Deliver(12); len(got) != 0 {
		t.Fatalf("early delivery: %v", got)
	}
	got := p.Deliver(13)
	if len(got) != 1 || got[0].PacketID != 1 {
		t.Fatalf("at t=13: %v", got)
	}
	got = p.Deliver(14)
	if len(got) != 1 || got[0].PacketID != 2 {
		t.Fatalf("at t=14: %v", got)
	}
	if p.Pending() != 0 {
		t.Errorf("Pending = %d", p.Pending())
	}
	if p.Sent() != 2 {
		t.Errorf("Sent = %d", p.Sent())
	}
}

func TestPipeZeroLatency(t *testing.T) {
	p := NewPipe(0)
	p.Send(5, Message{PacketID: 7})
	if got := p.Deliver(5); len(got) != 1 {
		t.Fatal("zero-latency message must arrive the same cycle")
	}
}

func TestPipeCompaction(t *testing.T) {
	p := NewPipe(1)
	for i := int64(0); i < 5000; i++ {
		p.Send(i, Message{PacketID: i})
		p.Deliver(i + 1)
	}
	if p.Pending() != 0 {
		t.Errorf("Pending = %d after drain", p.Pending())
	}
}

// TestPipeSendDelayedReorders: a delayed (browned-out) message must not
// block later clean sends — SendDelayed insertion-sorts by arrival so
// Deliver's in-order head scan stays valid even when a slow message is
// overtaken by faster ones sent after it.
func TestPipeSendDelayedReorders(t *testing.T) {
	p := NewPipe(2)
	p.SendDelayed(10, 8, Message{PacketID: 1}) // arrives at 20
	p.Send(11, Message{PacketID: 2})           // arrives at 13: overtakes
	p.SendDelayed(12, 3, Message{PacketID: 3}) // arrives at 17: overtakes
	got := p.Deliver(13)
	if len(got) != 1 || got[0].PacketID != 2 {
		t.Fatalf("at t=13: %v, want the clean overtaker", got)
	}
	got = p.Deliver(19)
	if len(got) != 1 || got[0].PacketID != 3 {
		t.Fatalf("at t=19: %v, want the lightly delayed message", got)
	}
	got = p.Deliver(20)
	if len(got) != 1 || got[0].PacketID != 1 {
		t.Fatalf("at t=20: %v, want the browned-out straggler", got)
	}
	if p.Pending() != 0 || p.Sent() != 3 {
		t.Errorf("Pending=%d Sent=%d", p.Pending(), p.Sent())
	}
}

// TestPipeSendDelayedTiesKeepFIFO: equal arrival times preserve send
// order, so a same-link message pair never reorders.
func TestPipeSendDelayedTiesKeepFIFO(t *testing.T) {
	p := NewPipe(1)
	p.SendDelayed(5, 2, Message{PacketID: 1}) // arrives at 8
	p.SendDelayed(6, 1, Message{PacketID: 2}) // arrives at 8 too
	p.Send(7, Message{PacketID: 3})           // arrives at 8 too
	got := p.Deliver(8)
	if len(got) != 3 || got[0].PacketID != 1 || got[1].PacketID != 2 || got[2].PacketID != 3 {
		t.Fatalf("tied arrivals reordered: %v", got)
	}
}

// TestPipeSendDelayedNegativeExtraClamped: negative extra behaves as 0.
func TestPipeSendDelayedNegativeExtraClamped(t *testing.T) {
	p := NewPipe(3)
	p.SendDelayed(10, -5, Message{PacketID: 1})
	if got := p.Deliver(12); len(got) != 0 {
		t.Fatalf("negative extra delivered early: %v", got)
	}
	if got := p.Deliver(13); len(got) != 1 {
		t.Fatal("negative extra must clamp to the base latency")
	}
}

func TestPipeNegativeLatencyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic")
		}
	}()
	NewPipe(-1)
}

func TestPipeOutOfOrderSendPanics(t *testing.T) {
	p := NewPipe(2)
	p.Send(10, Message{})
	defer func() {
		if recover() == nil {
			t.Error("want panic")
		}
	}()
	p.Send(5, Message{})
}

func TestPipeOutOfOrderSendAfterDrainPanics(t *testing.T) {
	// Regression: the order guard compared against the queue tail, so it
	// went blind whenever Deliver had fully drained the queue.
	p := NewPipe(2)
	p.Send(10, Message{})
	if got := p.Deliver(100); len(got) != 1 {
		t.Fatalf("delivered %d messages, want 1", len(got))
	}
	defer func() {
		if recover() == nil {
			t.Error("want panic on time-travelling send after drain")
		}
	}()
	p.Send(5, Message{})
}
