package bench

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestGridEndToEnd runs a miniature grid (router + sim cells, one
// warmup repeat, a figure) and checks every artifact the harness
// promises: records, summaries, cells.json, figure CSVs, profiles,
// and a BENCH snapshot that the comparator accepts.
func TestGridEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("grid run in -short mode")
	}
	spec, err := LoadSpec(strings.NewReader(`{
		"name": "mini",
		"repeats": 2,
		"warmup_repeats": 1,
		"router": [{
			"name": "MiniChurn",
			"update_rates": [0, 50],
			"table_prefixes": 3000,
			"warmup_lookups": 500,
			"lookups": 2000
		}],
		"sim": [{
			"name": "MiniSim",
			"psi": [2],
			"packets_per_lc": 1500,
			"table_prefixes": 3000
		}],
		"figures": ["bits"]
	}`))
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	var logged []string
	res, err := Run(Options{
		Spec:     spec,
		OutDir:   dir,
		Profiles: true,
		Logf:     func(f string, a ...any) { logged = append(logged, f) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 3 {
		t.Fatalf("got %d cells, want 3", len(res.Cells))
	}
	if len(logged) == 0 {
		t.Error("no progress was logged")
	}

	for _, c := range res.Cells {
		if len(c.Repeats) != 3 {
			t.Errorf("%s: %d repeats, want 3 (1 warmup + 2 measured)", c.Name, len(c.Repeats))
		}
		if !c.Repeats[0].Warmup || c.Repeats[1].Warmup || c.Repeats[2].Warmup {
			t.Errorf("%s: warmup flags wrong: %+v", c.Name, c.Repeats)
		}
		prim := primaryMetric(c.Kind)
		sum, ok := c.Summary[prim]
		if !ok || sum.N != 2 {
			t.Errorf("%s: summary for %s covers %d repeats, want 2 (warmup excluded)", c.Name, prim, sum.N)
		}
		if sum.Mean <= 0 {
			t.Errorf("%s: %s mean = %v, want > 0", c.Name, prim, sum.Mean)
		}
		for _, r := range c.Repeats {
			if r.Resources["goroutines"] <= 0 || r.Resources["heap_bytes"] <= 0 {
				t.Errorf("%s: resource capture missing: %v", c.Name, r.Resources)
			}
		}
	}

	// Churned cell must have applied updates; churn-free must not report them.
	byName := map[string]CellResult{}
	for _, c := range res.Cells {
		byName[c.Name] = c
	}
	if _, ok := byName["MiniChurn/rate=50"].Summary["updates_applied"]; !ok {
		t.Error("churned cell did not record updates_applied")
	}
	if _, ok := byName["MiniChurn/rate=0"].Summary["updates_applied"]; ok {
		t.Error("churn-free cell recorded updates_applied")
	}

	for _, f := range []string{
		"records.csv", "summary.csv", "cells.json",
		filepath.Join("figures", "bits.csv"),
		filepath.Join("profiles", "MiniChurn_rate-0.cpu.pprof"),
		filepath.Join("profiles", "MiniChurn_rate-0.heap.pprof"),
		filepath.Join("profiles", "MiniSim.cpu.pprof"),
	} {
		st, err := os.Stat(filepath.Join(dir, f))
		if err != nil {
			t.Errorf("missing artifact %s: %v", f, err)
		} else if st.Size() == 0 {
			t.Errorf("artifact %s is empty", f)
		}
	}

	rec, err := os.ReadFile(filepath.Join(dir, "records.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(rec), "MiniChurn/rate=50,router,0,true,ns_per_op,") {
		t.Errorf("records.csv missing warmup row:\n%s", firstLines(string(rec), 5))
	}
	if !strings.Contains(string(rec), "res.gc_cycles") {
		t.Error("records.csv missing resource rows")
	}

	var reloaded RunResult
	cb, err := os.ReadFile(filepath.Join(dir, "cells.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(cb, &reloaded); err != nil {
		t.Fatalf("cells.json does not round-trip: %v", err)
	}
	if reloaded.Grid != "mini" || len(reloaded.Cells) != 3 {
		t.Errorf("cells.json content wrong: grid=%q cells=%d", reloaded.Grid, len(reloaded.Cells))
	}

	// Snapshot: schema-compatible with the comparator, and fields mode
	// agrees with itself.
	snap := BuildSnapshot(res, 9, "t", "d", "cmd", "2026-08-07")
	if len(snap.Benchmarks) != 2 || len(snap.Sim) != 1 {
		t.Fatalf("snapshot sections wrong: %d benchmarks, %d sim", len(snap.Benchmarks), len(snap.Sim))
	}
	path := filepath.Join(dir, "BENCH_t.json")
	if err := snap.Write(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	if problems := CompareFields(snap, loaded); len(problems) != 0 {
		t.Errorf("snapshot does not round-trip: %v", problems)
	}
	rep, err := Compare(loaded, loaded, 1.01, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Regressions) != 0 {
		t.Errorf("self-compare regressed: %+v", rep.Regressions)
	}
}

// TestGridSlowdownTripsCompare proves the regression gate end to end:
// the same tiny grid run with an injected per-op slowdown must blow
// through the ratio ceiling against its honest twin.
func TestGridSlowdownTripsCompare(t *testing.T) {
	if testing.Short() {
		t.Skip("grid run in -short mode")
	}
	const specJSON = `{
		"name": "tripwire",
		"repeats": 1,
		"router": [{
			"name": "Trip",
			"table_prefixes": 2000,
			"warmup_lookups": 200,
			"lookups": 400
		}]
	}`
	runOne := func(slowdown int64) *Snapshot {
		spec, err := LoadSpec(strings.NewReader(specJSON))
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(Options{Spec: spec, SlowdownNS: slowdown})
		if err != nil {
			t.Fatal(err)
		}
		return BuildSnapshot(res, 0, "t", "", "", "")
	}
	honest := runOne(0)
	slowed := runOne(500_000) // +0.5ms per op dwarfs any real lookup

	rep, err := Compare(honest, slowed, 3.0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Regressions) == 0 {
		t.Fatalf("injected 0.5ms/op slowdown not flagged at 3x ceiling:\n%s", rep.String())
	}
}

func firstLines(s string, n int) string {
	lines := strings.SplitN(s, "\n", n+1)
	if len(lines) > n {
		lines = lines[:n]
	}
	return strings.Join(lines, "\n")
}
