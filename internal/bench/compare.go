package bench

import (
	"fmt"
	"sort"
	"strings"
)

// CompareMetrics are the lower-is-better latency metrics the value
// comparator checks when present in both snapshots.
var CompareMetrics = []string{
	"ns_per_op", "p50_ns", "p99_ns",
	"mean_cycles", "p99_cycles", "worst_cycles",
}

// CompareRow is one (benchmark, metric) ratio between two snapshots.
type CompareRow struct {
	Section string  `json:"section"` // "benchmarks" or "sim"
	Name    string  `json:"name"`
	Metric  string  `json:"metric"`
	Old     float64 `json:"old"`
	New     float64 `json:"new"`
	Ratio   float64 `json:"ratio"`
	Ceiling float64 `json:"ceiling"`
	// Regressed means new/old exceeded the ceiling for this metric.
	Regressed bool `json:"regressed,omitempty"`
}

// CompareReport is the result of a value comparison.
type CompareReport struct {
	Rows        []CompareRow
	Regressions []CompareRow
}

// String renders the report as an aligned table, regressions marked.
func (r *CompareReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-44s %-12s %12s %12s %7s %8s\n", "benchmark", "metric", "old", "new", "ratio", "ceiling")
	for _, row := range r.Rows {
		mark := ""
		if row.Regressed {
			mark = "  REGRESSED"
		}
		fmt.Fprintf(&b, "%-44s %-12s %12.1f %12.1f %7.3f %8.2f%s\n",
			row.Name, row.Metric, row.Old, row.New, row.Ratio, row.Ceiling, mark)
	}
	fmt.Fprintf(&b, "%d comparisons, %d regressions\n", len(r.Rows), len(r.Regressions))
	return b.String()
}

func numField(m map[string]any, k string) (float64, bool) {
	v, ok := m[k]
	if !ok {
		return 0, false
	}
	f, ok := v.(float64) // encoding/json decodes every number to float64
	return f, ok
}

func nameOf(m map[string]any) string {
	if s, ok := m["name"].(string); ok {
		return s
	}
	return ""
}

func indexByName(entries []map[string]any) map[string]map[string]any {
	out := make(map[string]map[string]any, len(entries))
	for _, e := range entries {
		if n := nameOf(e); n != "" {
			out[n] = e
		}
	}
	return out
}

// Compare checks every benchmark name the two snapshots share, metric
// by metric, against ratio ceilings (new/old, lower-is-better).
// perMetric overrides the default ceiling for individual metrics.
// Benchmarks present in only one snapshot are skipped — stacked PRs
// add cells; that is not a regression. An empty intersection is an
// error: it means the snapshots are not comparable at all.
func Compare(oldS, newS *Snapshot, ceiling float64, perMetric map[string]float64) (*CompareReport, error) {
	if ceiling <= 0 {
		return nil, fmt.Errorf("compare: ceiling must be positive, got %g", ceiling)
	}
	rep := &CompareReport{}
	sections := []struct {
		name     string
		old, new []map[string]any
	}{
		{"benchmarks", oldS.Benchmarks, newS.Benchmarks},
		{"sim", oldS.Sim, newS.Sim},
	}
	for _, sec := range sections {
		oldIdx := indexByName(sec.old)
		var names []string
		for _, e := range sec.new {
			if n := nameOf(e); n != "" && oldIdx[n] != nil {
				names = append(names, n)
			}
		}
		sort.Strings(names)
		newIdx := indexByName(sec.new)
		for _, n := range names {
			oe, ne := oldIdx[n], newIdx[n]
			for _, metric := range CompareMetrics {
				ov, ok1 := numField(oe, metric)
				nv, ok2 := numField(ne, metric)
				if !ok1 || !ok2 || ov <= 0 {
					continue
				}
				c := ceiling
				if v, ok := perMetric[metric]; ok {
					c = v
				}
				row := CompareRow{
					Section: sec.name, Name: n, Metric: metric,
					Old: ov, New: nv, Ratio: nv / ov, Ceiling: c,
					Regressed: nv/ov > c,
				}
				rep.Rows = append(rep.Rows, row)
				if row.Regressed {
					rep.Regressions = append(rep.Regressions, row)
				}
			}
		}
	}
	if len(rep.Rows) == 0 {
		return nil, fmt.Errorf("compare: snapshots share no benchmark names with comparable metrics")
	}
	return rep, nil
}

// CompareFields is the machine-independent freshness gate: it checks
// that two snapshots have identical benchmark name sets and, per
// benchmark, identical field-key sets — values are ignored, so a
// committed BENCH_<pr>.json and a fresh run on different hardware
// agree unless someone changed the grid or the schema without
// regenerating the snapshot. Returns the list of discrepancies.
func CompareFields(oldS, newS *Snapshot) []string {
	var problems []string
	sections := []struct {
		name     string
		old, new []map[string]any
	}{
		{"benchmarks", oldS.Benchmarks, newS.Benchmarks},
		{"sim", oldS.Sim, newS.Sim},
	}
	for _, sec := range sections {
		oldIdx, newIdx := indexByName(sec.old), indexByName(sec.new)
		for _, n := range sortedNames(oldIdx) {
			if newIdx[n] == nil {
				problems = append(problems, fmt.Sprintf("%s %q: missing from new snapshot", sec.name, n))
			}
		}
		for _, n := range sortedNames(newIdx) {
			if oldIdx[n] == nil {
				problems = append(problems, fmt.Sprintf("%s %q: missing from old snapshot", sec.name, n))
			}
		}
		for _, n := range sortedNames(oldIdx) {
			ne := newIdx[n]
			if ne == nil {
				continue
			}
			ok, nk := fieldKeys(oldIdx[n]), fieldKeys(ne)
			if !equalStrings(ok, nk) {
				problems = append(problems, fmt.Sprintf("%s %q: field sets differ: old=[%s] new=[%s]",
					sec.name, n, strings.Join(ok, " "), strings.Join(nk, " ")))
			}
		}
	}
	return problems
}

func sortedNames(idx map[string]map[string]any) []string {
	out := make([]string, 0, len(idx))
	for n := range idx {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// fieldKeys lists an entry's keys, dropping ones that legitimately
// vary run to run without a schema change.
func fieldKeys(m map[string]any) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		if k == "note" || k == "variance_flagged" {
			continue
		}
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
