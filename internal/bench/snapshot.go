package bench

import (
	"bufio"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"strings"
)

// Snapshot is a BENCH_<pr>.json document. Benchmark entries are open
// maps so hand-authored snapshots from earlier PRs (BENCH_6, BENCH_7)
// and harness-generated ones share one loader and one comparator.
type Snapshot struct {
	PR          int              `json:"pr"`
	Title       string           `json:"title"`
	Description string           `json:"description,omitempty"`
	Command     string           `json:"command,omitempty"`
	Environment map[string]any   `json:"environment,omitempty"`
	Benchmarks  []map[string]any `json:"benchmarks,omitempty"`
	Sim         []map[string]any `json:"sim,omitempty"`
	Headline    map[string]any   `json:"headline,omitempty"`
}

// LoadSnapshot reads any BENCH_*.json document.
func LoadSnapshot(path string) (*Snapshot, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s Snapshot
	if err := json.Unmarshal(b, &s); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(s.Benchmarks) == 0 && len(s.Sim) == 0 {
		return nil, fmt.Errorf("%s: snapshot has no benchmarks", path)
	}
	return &s, nil
}

// Write emits the snapshot as indented JSON.
func (s *Snapshot) Write(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// round keeps snapshot numbers readable: integers for ns-scale values,
// a few decimals for rates and cycle counts.
func round(v float64, digits int) float64 {
	p := math.Pow10(digits)
	return math.Round(v*p) / p
}

// BuildSnapshot folds a grid run into the BENCH_<pr>.json schema.
// Router cells land in "benchmarks" with the ns_per_op/p50_ns/p99_ns
// keys prior snapshots use (means across measured repeats, exact
// percentiles within each repeat); sim cells land in "sim" keyed in
// lookup cycles. rel_std and repeats make run quality auditable.
func BuildSnapshot(res *RunResult, pr int, title, description, command, date string) *Snapshot {
	s := &Snapshot{
		PR:          pr,
		Title:       title,
		Description: description,
		Command:     command,
		Environment: map[string]any{
			"goos":    runtime.GOOS,
			"goarch":  runtime.GOARCH,
			"cpu":     cpuModel(),
			"num_cpu": runtime.NumCPU(),
			"go":      runtime.Version(),
			"grid":    res.Grid,
			"scale":   res.Scale,
			"repeats": res.Repeats,
			"warmup":  res.WarmupRepeats,
		},
	}
	if date != "" {
		s.Environment["date"] = date
	}
	for _, c := range res.Cells {
		entry := map[string]any{
			"name":    c.Name,
			"repeats": res.Repeats,
		}
		switch c.Kind {
		case "router":
			for src, dst := range map[string]string{
				"ns_per_op": "ns_per_op", "p50_ns": "p50_ns", "p99_ns": "p99_ns", "max_ns": "max_ns",
			} {
				if sum, ok := c.Summary[src]; ok {
					entry[dst] = round(sum.Mean, 0)
				}
			}
			if sum, ok := c.Summary["ns_per_op"]; ok {
				entry["rel_std"] = round(sum.RelStd(), 4)
			}
			if sum, ok := c.Summary["updates_applied"]; ok {
				entry["updates_applied"] = round(sum.Mean, 0)
			}
			// Gray-failure cells carry their mitigation evidence; these
			// are counters, not latencies, so CompareMetrics skips them.
			for _, k := range []string{"gray_degrades", "hedges", "eject_served"} {
				if sum, ok := c.Summary[k]; ok {
					entry[k] = round(sum.Mean, 0)
				}
			}
			if c.VarianceFlagged {
				entry["variance_flagged"] = true
			}
			s.Benchmarks = append(s.Benchmarks, entry)
		case "sim":
			for _, k := range []string{"mean_cycles", "p50_cycles", "p99_cycles", "worst_cycles"} {
				if sum, ok := c.Summary[k]; ok {
					entry[k] = round(sum.Mean, 2)
				}
			}
			for _, k := range []string{"hit_rate", "mpps_router"} {
				if sum, ok := c.Summary[k]; ok {
					entry[k] = round(sum.Mean, 3)
				}
			}
			if sum, ok := c.Summary["mean_cycles"]; ok {
				entry["rel_std"] = round(sum.RelStd(), 4)
			}
			if c.VarianceFlagged {
				entry["variance_flagged"] = true
			}
			s.Sim = append(s.Sim, entry)
		}
	}
	return s
}

// cpuModel reads the CPU model string, best effort.
func cpuModel() string {
	f, err := os.Open("/proc/cpuinfo")
	if err != nil {
		return runtime.GOARCH
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "model name") {
			if _, after, ok := strings.Cut(line, ":"); ok {
				return strings.TrimSpace(after)
			}
		}
	}
	return runtime.GOARCH
}
