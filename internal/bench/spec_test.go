package bench

import (
	"strings"
	"testing"
)

func TestLoadSpecDefaultsAndNaming(t *testing.T) {
	spec, err := LoadSpec(strings.NewReader(`{
		"name": "t",
		"router": [{"name": "LookupUnderChurn", "update_rates": [0, 20, 1000]}],
		"sim": [{"name": "SimPsi", "psi": [4, 16]}]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if spec.Repeats != 3 || spec.WarmupRepeats != 0 || spec.VarianceWarnRelStd != 0.25 {
		t.Errorf("defaults not applied: %+v", spec)
	}
	if spec.Scale != "quick" {
		t.Errorf("scale default = %q", spec.Scale)
	}
	cells := spec.Cells()
	var names []string
	for _, c := range cells {
		names = append(names, c.Name)
	}
	// Only the multi-valued axes appear in names, so grid cells line up
	// with the hand-recorded BENCH_7 benchmark names.
	want := []string{
		"LookupUnderChurn/rate=0", "LookupUnderChurn/rate=20", "LookupUnderChurn/rate=1000",
		"SimPsi/psi=4", "SimPsi/psi=16",
	}
	if strings.Join(names, " ") != strings.Join(want, " ") {
		t.Errorf("cell names = %v, want %v", names, want)
	}
	r := cells[0].Router
	if r == nil || r.Engine != "bintrie" || r.LCs != 4 || r.TablePrefixes != 20000 || r.Lookups != 50000 {
		t.Errorf("router cell defaults wrong: %+v", r)
	}
	s := cells[3].Sim
	if s == nil || s.Trace != "D_75" || s.PacketsPerLC != 20000 || s.Seed != 42 || s.LookupCycles != 40 {
		t.Errorf("sim cell defaults wrong: %+v", s)
	}
}

func TestLoadSpecMultiAxisNaming(t *testing.T) {
	spec, err := LoadSpec(strings.NewReader(`{
		"name": "t",
		"router": [{"name": "X", "engines": ["bintrie", "lctrie"], "batch": [32, 256]}]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	cells := spec.Cells()
	if len(cells) != 4 {
		t.Fatalf("got %d cells, want 4", len(cells))
	}
	if cells[0].Name != "X/engine=bintrie/batch=32" || cells[3].Name != "X/engine=lctrie/batch=256" {
		t.Errorf("axis naming wrong: %q ... %q", cells[0].Name, cells[3].Name)
	}
	if cells[1].Params["batch"] != "256" || cells[1].Params["engine"] != "bintrie" {
		t.Errorf("params wrong: %v", cells[1].Params)
	}
}

func TestLoadSpecRejectsBadInput(t *testing.T) {
	cases := map[string]string{
		"no name":           `{"router": [{"name": "x"}]}`,
		"empty grid":        `{"name": "t"}`,
		"bad scale":         `{"name": "t", "scale": "huge", "router": [{"name": "x"}]}`,
		"unknown engine":    `{"name": "t", "router": [{"name": "x", "engines": ["nope"]}]}`,
		"unknown sim eng":   `{"name": "t", "sim": [{"name": "x", "engines": ["nope"]}]}`,
		"unknown trace":     `{"name": "t", "sim": [{"name": "x", "trace": "Z_9"}]}`,
		"unknown figure":    `{"name": "t", "figures": ["fig99"]}`,
		"duplicate name":    `{"name": "t", "router": [{"name": "x"}], "sim": [{"name": "x"}]}`,
		"negative rate":     `{"name": "t", "router": [{"name": "x", "update_rates": [-1]}]}`,
		"zero psi":          `{"name": "t", "sim": [{"name": "x", "psi": [0]}]}`,
		"unknown field":     `{"name": "t", "router": [{"name": "x", "bogus": 1}]}`,
		"experiment noname": `{"name": "t", "router": [{"engines": ["bintrie"]}]}`,
	}
	for label, in := range cases {
		if _, err := LoadSpec(strings.NewReader(in)); err == nil {
			t.Errorf("%s: spec accepted, want error", label)
		}
	}
}

func TestLoadSpecFigures(t *testing.T) {
	spec, err := LoadSpec(strings.NewReader(`{"name": "t", "figures": ["fig4", "fig5", "fig6"]}`))
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.Figures) != 3 || len(spec.Cells()) != 0 {
		t.Errorf("figures-only spec mishandled: %+v", spec)
	}
}
