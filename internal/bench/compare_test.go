package bench

import (
	"strings"
	"testing"
)

func snap(entries ...map[string]any) *Snapshot {
	return &Snapshot{PR: 1, Title: "t", Benchmarks: entries}
}

func TestCompareCleanAndRegressed(t *testing.T) {
	oldS := snap(map[string]any{"name": "A", "ns_per_op": 100.0, "p99_ns": 500.0})
	newS := snap(map[string]any{"name": "A", "ns_per_op": 150.0, "p99_ns": 450.0})

	rep, err := Compare(oldS, newS, 2.0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 2 || len(rep.Regressions) != 0 {
		t.Fatalf("clean compare: rows=%d regressions=%d", len(rep.Rows), len(rep.Regressions))
	}

	// 1.5x ratio trips a 1.2 ceiling.
	rep, err = Compare(oldS, newS, 1.2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Regressions) != 1 || rep.Regressions[0].Metric != "ns_per_op" {
		t.Fatalf("regression not detected: %+v", rep.Regressions)
	}
	if got := rep.Regressions[0].Ratio; got < 1.49 || got > 1.51 {
		t.Errorf("ratio = %v, want 1.5", got)
	}
	if !strings.Contains(rep.String(), "REGRESSED") {
		t.Errorf("report does not mark the regression:\n%s", rep.String())
	}
}

func TestComparePerMetricCeiling(t *testing.T) {
	oldS := snap(map[string]any{"name": "A", "ns_per_op": 100.0, "p99_ns": 100.0})
	newS := snap(map[string]any{"name": "A", "ns_per_op": 130.0, "p99_ns": 130.0})
	rep, err := Compare(oldS, newS, 1.5, map[string]float64{"p99_ns": 1.1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Regressions) != 1 || rep.Regressions[0].Metric != "p99_ns" {
		t.Fatalf("per-metric ceiling not honored: %+v", rep.Regressions)
	}
}

func TestCompareSkipsUnsharedAndNonNumeric(t *testing.T) {
	oldS := snap(
		map[string]any{"name": "A", "ns_per_op": 100.0, "note": "x"},
		map[string]any{"name": "OnlyOld", "ns_per_op": 1.0},
	)
	newS := snap(
		map[string]any{"name": "A", "ns_per_op": 110.0, "note": "y"},
		map[string]any{"name": "OnlyNew", "ns_per_op": 999999.0},
	)
	rep, err := Compare(oldS, newS, 2.0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 1 || rep.Rows[0].Name != "A" {
		t.Fatalf("expected only the shared benchmark compared: %+v", rep.Rows)
	}
}

func TestCompareNoOverlapIsError(t *testing.T) {
	oldS := snap(map[string]any{"name": "A", "ns_per_op": 1.0})
	newS := snap(map[string]any{"name": "B", "ns_per_op": 1.0})
	if _, err := Compare(oldS, newS, 2.0, nil); err == nil {
		t.Fatal("disjoint snapshots compared without error")
	}
	if _, err := Compare(oldS, newS, 0, nil); err == nil {
		t.Fatal("non-positive ceiling accepted")
	}
}

func TestCompareSimSection(t *testing.T) {
	oldS := &Snapshot{PR: 1, Sim: []map[string]any{{"name": "S", "mean_cycles": 7.0}}}
	newS := &Snapshot{PR: 2, Sim: []map[string]any{{"name": "S", "mean_cycles": 21.0}}}
	rep, err := Compare(oldS, newS, 2.0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Regressions) != 1 || rep.Regressions[0].Section != "sim" {
		t.Fatalf("sim regression missed: %+v", rep.Regressions)
	}
}

func TestCompareFields(t *testing.T) {
	a := snap(map[string]any{"name": "A", "ns_per_op": 100.0, "p99_ns": 1.0})
	b := snap(map[string]any{"name": "A", "ns_per_op": 999.0, "p99_ns": 2.0})
	if problems := CompareFields(a, b); len(problems) != 0 {
		t.Errorf("value-only differences flagged: %v", problems)
	}

	// note and variance_flagged may vary run to run.
	c := snap(map[string]any{"name": "A", "ns_per_op": 1.0, "p99_ns": 1.0, "note": "x", "variance_flagged": true})
	if problems := CompareFields(a, c); len(problems) != 0 {
		t.Errorf("volatile fields flagged: %v", problems)
	}

	missing := snap(map[string]any{"name": "B", "ns_per_op": 1.0})
	problems := CompareFields(a, missing)
	if len(problems) != 2 {
		t.Errorf("name mismatch should produce 2 problems, got %v", problems)
	}

	extraField := snap(map[string]any{"name": "A", "ns_per_op": 1.0})
	problems = CompareFields(a, extraField)
	if len(problems) != 1 || !strings.Contains(problems[0], "field sets differ") {
		t.Errorf("field-set drift not reported: %v", problems)
	}
}
