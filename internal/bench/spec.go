// Package bench is the reproducible perf-observability harness: a
// declarative experiment grid (engines × ψ × batch × shards × churn ×
// corruption × repeats) whose cells run the real router and the cycle
// simulator in-process, emitting machine-readable records, BENCH_*.json
// snapshots, pprof profiles, and regression comparisons against prior
// snapshots.
//
// The grid spec is JSON so the same file drives local runs, CI, and the
// scripts/paper pipeline. A cell is one concrete combination of axis
// values; its name lists only the axes the spec left multi-valued
// (e.g. "LookupUnderChurn/rate=20"), so cell names stay stable across
// snapshots when single-valued axes are re-pinned.
package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"spal/internal/experiments"
	"spal/internal/lpm/engines"
	"spal/internal/trace"
)

// GridSpec is the declarative experiment grid, loaded from JSON.
type GridSpec struct {
	// Name labels the grid in records and snapshot environments.
	Name string `json:"name"`
	// Scale selects the figure-regeneration fidelity: "quick" or "full".
	Scale string `json:"scale,omitempty"`
	// Repeats is the number of measured runs per cell (default 3).
	Repeats int `json:"repeats,omitempty"`
	// WarmupRepeats runs are executed and recorded but excluded from
	// summaries — they absorb first-run effects (page faults, trained
	// branch predictors, lazily built tables).
	WarmupRepeats int `json:"warmup_repeats,omitempty"`
	// VarianceWarnRelStd flags a cell when the relative standard
	// deviation of its primary latency metric across measured repeats
	// exceeds this threshold (default 0.25).
	VarianceWarnRelStd float64 `json:"variance_warn_rel_std,omitempty"`

	Router []RouterExp `json:"router,omitempty"`
	Sim    []SimExp    `json:"sim,omitempty"`
	// Figures names experiments.* tables to regenerate as CSVs
	// alongside the grid (fig4, fig5, fig6, ...).
	Figures []string `json:"figures,omitempty"`
}

// RouterExp measures client-observed lookup latency on the real
// concurrent router, optionally under route churn and fill corruption.
// Every slice is an axis; the cross product of all axes yields cells.
type RouterExp struct {
	Name         string    `json:"name"`
	Engines      []string  `json:"engines,omitempty"`       // axis: engine (default bintrie)
	LCs          []int     `json:"lcs,omitempty"`           // axis: lcs (default 4)
	Batch        []int     `json:"batch,omitempty"`         // axis: batch; 0/1 = single-lookup path
	CacheShards  []int     `json:"cache_shards,omitempty"`  // axis: shards; 0 = router default
	UpdateRates  []float64 `json:"update_rates,omitempty"`  // axis: rate (updates/sec, 0 = no churn)
	CorruptRates []float64 `json:"corrupt_rates,omitempty"` // axis: corrupt (fill corruption prob)
	SlowLCs      []int     `json:"slow_lcs,omitempty"`      // axis: slow (browned-out LC id; -1 = none)
	Hedge        []bool    `json:"hedge,omitempty"`         // axis: hedge (gray-failure subsystem on)

	TablePrefixes int     `json:"table_prefixes,omitempty"` // default 20000
	WarmupLookups int     `json:"warmup_lookups,omitempty"` // default 20000
	Lookups       int     `json:"lookups,omitempty"`        // timed lookups per run (default 50000)
	SlowFactor    float64 `json:"slow_factor,omitempty"`    // brownout severity for slow cells (default 10)
	TimeoutMS     float64 `json:"timeout_ms,omitempty"`     // request timeout override, ms (0 = router default)
	Seed          uint64  `json:"seed,omitempty"`           // default 1
}

// SimExp runs the trace-driven cycle simulator of the paper's Sec. 5.
type SimExp struct {
	Name          string    `json:"name"`
	Psi           []int     `json:"psi,omitempty"`             // axis: psi (default 16)
	Engines       []string  `json:"engines,omitempty"`         // axis: engine; "" = reference
	UpdatesPerSec []float64 `json:"updates_per_sec,omitempty"` // axis: updates
	CorruptRates  []float64 `json:"corrupt_rates,omitempty"`   // axis: corrupt
	FullFlush     []bool    `json:"full_flush,omitempty"`      // axis: flush (vs targeted invalidation)
	CacheBlocks   []int     `json:"cache_blocks,omitempty"`    // axis: beta; 0 = default

	PacketsPerLC  int    `json:"packets_per_lc,omitempty"` // default 20000
	TablePrefixes int    `json:"table_prefixes,omitempty"` // default 20000
	Trace         string `json:"trace,omitempty"`          // default D_75
	LookupCycles  int    `json:"lookup_cycles,omitempty"`  // default 40 (Lulea FE)
	ScrubEvery    int64  `json:"scrub_every,omitempty"`    // cycles; 0 = off
	Seed          uint64 `json:"seed,omitempty"`           // default 42
}

// RouterCell is one concrete router measurement: every axis pinned.
type RouterCell struct {
	Name          string
	Engine        string
	LCs           int
	Batch         int
	CacheShards   int
	UpdateRate    float64
	CorruptRate   float64
	SlowLC        int // browned-out LC (-1 = none)
	Hedge         bool
	SlowFactor    float64
	TimeoutMS     float64
	TablePrefixes int
	WarmupLookups int
	Lookups       int
	Seed          uint64
}

// SimCell is one concrete simulator run: every axis pinned.
type SimCell struct {
	Name          string
	Psi           int
	Engine        string
	UpdatesPerSec float64
	CorruptRate   float64
	FullFlush     bool
	CacheBlocks   int
	PacketsPerLC  int
	TablePrefixes int
	Trace         string
	LookupCycles  int
	ScrubEvery    int64
	Seed          uint64
}

// Cell is one schedulable grid cell with its axis values recorded for
// the long-format CSV. Exactly one of Router/Sim is non-nil.
type Cell struct {
	Name   string
	Kind   string // "router" or "sim"
	Params map[string]string
	Router *RouterCell
	Sim    *SimCell
}

// LoadSpec reads and validates a grid spec.
func LoadSpec(r io.Reader) (*GridSpec, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var s GridSpec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("grid spec: %w", err)
	}
	s.applyDefaults()
	if err := s.validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// LoadSpecFile reads and validates a grid spec from a file.
func LoadSpecFile(path string) (*GridSpec, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	s, err := LoadSpec(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

func (s *GridSpec) applyDefaults() {
	if s.Scale == "" {
		s.Scale = "quick"
	}
	if s.Repeats <= 0 {
		s.Repeats = 3
	}
	if s.WarmupRepeats < 0 {
		s.WarmupRepeats = 0
	}
	if s.VarianceWarnRelStd <= 0 {
		s.VarianceWarnRelStd = 0.25
	}
	for i := range s.Router {
		e := &s.Router[i]
		if len(e.Engines) == 0 {
			e.Engines = []string{"bintrie"}
		}
		if len(e.LCs) == 0 {
			e.LCs = []int{4}
		}
		if len(e.Batch) == 0 {
			e.Batch = []int{0}
		}
		if len(e.CacheShards) == 0 {
			e.CacheShards = []int{0}
		}
		if len(e.UpdateRates) == 0 {
			e.UpdateRates = []float64{0}
		}
		if len(e.CorruptRates) == 0 {
			e.CorruptRates = []float64{0}
		}
		if len(e.SlowLCs) == 0 {
			e.SlowLCs = []int{-1}
		}
		if len(e.Hedge) == 0 {
			e.Hedge = []bool{false}
		}
		if e.TablePrefixes <= 0 {
			e.TablePrefixes = 20000
		}
		if e.WarmupLookups < 0 {
			e.WarmupLookups = 0
		} else if e.WarmupLookups == 0 {
			e.WarmupLookups = 20000
		}
		if e.Lookups <= 0 {
			e.Lookups = 50000
		}
		if e.SlowFactor <= 1 {
			e.SlowFactor = 10
		}
		if e.Seed == 0 {
			e.Seed = 1
		}
	}
	for i := range s.Sim {
		e := &s.Sim[i]
		if len(e.Psi) == 0 {
			e.Psi = []int{16}
		}
		if len(e.Engines) == 0 {
			e.Engines = []string{""}
		}
		if len(e.UpdatesPerSec) == 0 {
			e.UpdatesPerSec = []float64{0}
		}
		if len(e.CorruptRates) == 0 {
			e.CorruptRates = []float64{0}
		}
		if len(e.FullFlush) == 0 {
			e.FullFlush = []bool{false}
		}
		if len(e.CacheBlocks) == 0 {
			e.CacheBlocks = []int{0}
		}
		if e.PacketsPerLC <= 0 {
			e.PacketsPerLC = 20000
		}
		if e.TablePrefixes <= 0 {
			e.TablePrefixes = 20000
		}
		if e.Trace == "" {
			e.Trace = string(trace.D75)
		}
		if e.LookupCycles <= 0 {
			e.LookupCycles = 40
		}
		if e.Seed == 0 {
			e.Seed = 42
		}
	}
}

func (s *GridSpec) validate() error {
	if s.Name == "" {
		return fmt.Errorf("grid spec: name is required")
	}
	if s.Scale != "quick" && s.Scale != "full" {
		return fmt.Errorf("grid spec: scale must be quick or full, got %q", s.Scale)
	}
	if len(s.Router) == 0 && len(s.Sim) == 0 && len(s.Figures) == 0 {
		return fmt.Errorf("grid spec %q: no router/sim experiments or figures", s.Name)
	}
	seen := map[string]bool{}
	for _, e := range s.Router {
		if e.Name == "" {
			return fmt.Errorf("grid spec %q: router experiment without a name", s.Name)
		}
		if seen[e.Name] {
			return fmt.Errorf("grid spec %q: duplicate experiment name %q", s.Name, e.Name)
		}
		seen[e.Name] = true
		for _, eng := range e.Engines {
			if _, err := engines.Lookup(eng); err != nil {
				return fmt.Errorf("router experiment %q: %w", e.Name, err)
			}
		}
		for _, n := range e.LCs {
			if n <= 0 {
				return fmt.Errorf("router experiment %q: lcs must be positive", e.Name)
			}
		}
		for _, b := range e.Batch {
			if b < 0 {
				return fmt.Errorf("router experiment %q: batch must be >= 0", e.Name)
			}
		}
		for _, r := range append(append([]float64(nil), e.UpdateRates...), e.CorruptRates...) {
			if r < 0 {
				return fmt.Errorf("router experiment %q: rates must be >= 0", e.Name)
			}
		}
		for _, slow := range e.SlowLCs {
			if slow < -1 {
				return fmt.Errorf("router experiment %q: slow_lcs entries must be >= -1", e.Name)
			}
			for _, n := range e.LCs {
				if slow >= n {
					return fmt.Errorf("router experiment %q: slow LC %d outside [0,%d)", e.Name, slow, n)
				}
			}
		}
		if e.TimeoutMS < 0 {
			return fmt.Errorf("router experiment %q: timeout_ms must be >= 0", e.Name)
		}
	}
	for _, e := range s.Sim {
		if e.Name == "" {
			return fmt.Errorf("grid spec %q: sim experiment without a name", s.Name)
		}
		if seen[e.Name] {
			return fmt.Errorf("grid spec %q: duplicate experiment name %q", s.Name, e.Name)
		}
		seen[e.Name] = true
		for _, eng := range e.Engines {
			if eng == "" {
				continue // reference matcher
			}
			if _, err := engines.Lookup(eng); err != nil {
				return fmt.Errorf("sim experiment %q: %w", e.Name, err)
			}
		}
		for _, p := range e.Psi {
			if p <= 0 {
				return fmt.Errorf("sim experiment %q: psi must be positive", e.Name)
			}
		}
		ok := false
		for _, p := range trace.Presets {
			if string(p) == e.Trace {
				ok = true
			}
		}
		if !ok {
			return fmt.Errorf("sim experiment %q: unknown trace preset %q", e.Name, e.Trace)
		}
	}
	for _, f := range s.Figures {
		if _, ok := experiments.Get(f); !ok {
			return fmt.Errorf("grid spec %q: unknown figure experiment %q (known: %s)",
				s.Name, f, strings.Join(experiments.Names(), " "))
		}
	}
	return nil
}

// Cells expands the grid into its concrete cells, router experiments
// first, preserving spec order and axis order within each experiment.
func (s *GridSpec) Cells() []Cell {
	var cells []Cell
	for _, e := range s.Router {
		cells = append(cells, e.cells()...)
	}
	for _, e := range s.Sim {
		cells = append(cells, e.cells()...)
	}
	return cells
}

// axisVal renders an axis value compactly ("0", "20", "1e-04" → "0.0001").
func axisVal(v any) string {
	switch x := v.(type) {
	case int:
		return strconv.Itoa(x)
	case int64:
		return strconv.FormatInt(x, 10)
	case float64:
		return strconv.FormatFloat(x, 'g', -1, 64)
	case bool:
		return strconv.FormatBool(x)
	default:
		return fmt.Sprint(v)
	}
}

// cellName appends "/axis=value" for every axis the spec left
// multi-valued, keeping single-valued axes out of the name so it stays
// comparable across snapshots ("LookupUnderChurn/rate=20").
func cellName(base string, parts []string) string {
	if len(parts) == 0 {
		return base
	}
	return base + "/" + strings.Join(parts, "/")
}

func (e RouterExp) cells() []Cell {
	var out []Cell
	for _, eng := range e.Engines {
		for _, lcs := range e.LCs {
			for _, batch := range e.Batch {
				for _, shards := range e.CacheShards {
					for _, rate := range e.UpdateRates {
						for _, corrupt := range e.CorruptRates {
							for _, slow := range e.SlowLCs {
								for _, hedge := range e.Hedge {
									var parts []string
									add := func(axis, val string, multi bool) {
										if multi {
											parts = append(parts, axis+"="+val)
										}
									}
									add("engine", eng, len(e.Engines) > 1)
									add("lcs", axisVal(lcs), len(e.LCs) > 1)
									add("batch", axisVal(batch), len(e.Batch) > 1)
									add("shards", axisVal(shards), len(e.CacheShards) > 1)
									add("rate", axisVal(rate), len(e.UpdateRates) > 1)
									add("corrupt", axisVal(corrupt), len(e.CorruptRates) > 1)
									add("slow", axisVal(slow), len(e.SlowLCs) > 1)
									add("hedge", axisVal(hedge), len(e.Hedge) > 1)
									rc := &RouterCell{
										Name:          cellName(e.Name, parts),
										Engine:        eng,
										LCs:           lcs,
										Batch:         batch,
										CacheShards:   shards,
										UpdateRate:    rate,
										CorruptRate:   corrupt,
										SlowLC:        slow,
										Hedge:         hedge,
										SlowFactor:    e.SlowFactor,
										TimeoutMS:     e.TimeoutMS,
										TablePrefixes: e.TablePrefixes,
										WarmupLookups: e.WarmupLookups,
										Lookups:       e.Lookups,
										Seed:          e.Seed,
									}
									out = append(out, Cell{
										Name: rc.Name,
										Kind: "router",
										Params: map[string]string{
											"experiment": e.Name,
											"engine":     eng,
											"lcs":        axisVal(lcs),
											"batch":      axisVal(batch),
											"shards":     axisVal(shards),
											"rate":       axisVal(rate),
											"corrupt":    axisVal(corrupt),
											"slow":       axisVal(slow),
											"hedge":      axisVal(hedge),
										},
										Router: rc,
									})
								}
							}
						}
					}
				}
			}
		}
	}
	return out
}

func (e SimExp) cells() []Cell {
	var out []Cell
	for _, psi := range e.Psi {
		for _, eng := range e.Engines {
			for _, ups := range e.UpdatesPerSec {
				for _, corrupt := range e.CorruptRates {
					for _, flush := range e.FullFlush {
						for _, beta := range e.CacheBlocks {
							var parts []string
							add := func(axis, val string, multi bool) {
								if multi {
									parts = append(parts, axis+"="+val)
								}
							}
							add("psi", axisVal(psi), len(e.Psi) > 1)
							add("engine", eng, len(e.Engines) > 1)
							add("updates", axisVal(ups), len(e.UpdatesPerSec) > 1)
							add("corrupt", axisVal(corrupt), len(e.CorruptRates) > 1)
							add("flush", axisVal(flush), len(e.FullFlush) > 1)
							add("beta", axisVal(beta), len(e.CacheBlocks) > 1)
							sc := &SimCell{
								Name:          cellName(e.Name, parts),
								Psi:           psi,
								Engine:        eng,
								UpdatesPerSec: ups,
								CorruptRate:   corrupt,
								FullFlush:     flush,
								CacheBlocks:   beta,
								PacketsPerLC:  e.PacketsPerLC,
								TablePrefixes: e.TablePrefixes,
								Trace:         e.Trace,
								LookupCycles:  e.LookupCycles,
								ScrubEvery:    e.ScrubEvery,
								Seed:          e.Seed,
							}
							out = append(out, Cell{
								Name: sc.Name,
								Kind: "sim",
								Params: map[string]string{
									"experiment": e.Name,
									"psi":        axisVal(psi),
									"engine":     eng,
									"updates":    axisVal(ups),
									"corrupt":    axisVal(corrupt),
									"flush":      axisVal(flush),
									"beta":       axisVal(beta),
								},
								Sim: sc,
							})
						}
					}
				}
			}
		}
	}
	return out
}
