package bench

import (
	"context"
	"sort"
	"sync"
	"time"

	"spal/internal/ip"
	"spal/internal/router"
	"spal/internal/rtable"
	"spal/internal/stats"
)

// runRouterCell executes one repeat of a router cell and returns its
// metric map. Latency is client-observed wall time per lookup (or per
// batched lookup, normalized per address). A slowdown > 0 injects that
// much sleep into every timed operation — the CI tripwire that proves
// the regression gate actually fires.
func runRouterCell(c *RouterCell, repeat int, slowdown time.Duration) (map[string]float64, error) {
	tbl := rtable.Small(c.TablePrefixes, 7)
	opts := []router.Option{
		router.WithLCs(c.LCs),
		router.WithDefaultCache(),
		router.WithEngineName(c.Engine),
	}
	if c.CacheShards > 0 {
		opts = append(opts, router.WithCacheShards(c.CacheShards))
	}
	if c.TimeoutMS > 0 {
		opts = append(opts, router.WithRequestTimeout(time.Duration(c.TimeoutMS*float64(time.Millisecond))))
	}
	if c.SlowLC >= 0 {
		lf := router.NewLinkFaults(c.Seed + uint64(repeat)*17 + 5)
		lf.SlowLC(c.SlowLC, c.SlowFactor)
		opts = append(opts, router.WithFaultInjector(lf.Injector()))
	}
	if c.Hedge {
		opts = append(opts, router.WithGray(router.DefaultGrayPolicy()))
	}
	if c.CorruptRate > 0 {
		opts = append(opts,
			router.WithCorruption(router.CorruptionPolicy{
				Enabled:       true,
				Seed:          c.Seed + uint64(repeat)*131 + 77,
				WrongFillRate: c.CorruptRate,
			}),
			router.WithScrub(router.DefaultScrubPolicy()))
	}
	r, err := router.New(tbl, opts...)
	if err != nil {
		return nil, err
	}
	defer r.Stop()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	if c.UpdateRate > 0 {
		// One pre-generated stream covering the whole run, dispensed by
		// elapsed wall time so the applied rate matches the nominal one
		// even when a tick carries < 1 event. Same shape as the
		// BenchmarkLookupUnderChurn churn loop so grid cells and the
		// committed benchmark measure the same thing.
		const cycleNS = 5.0
		stream := rtable.GenerateUpdates(tbl, rtable.UpdateStreamConfig{
			RatePerSecond: c.UpdateRate,
			CycleNS:       cycleNS,
			Duration:      int64(120 * 1e9 / cycleNS),
			WithdrawProb:  0.35,
			NewPrefixProb: 0.2,
			Seed:          c.Seed + uint64(repeat),
		})
		wg.Add(1)
		go func() {
			defer wg.Done()
			cur := tbl
			next := 0
			start := time.Now()
			t := time.NewTicker(10 * time.Millisecond)
			defer t.Stop()
			for {
				select {
				case <-stop:
					return
				case <-t.C:
				}
				due := int64(float64(time.Since(start).Nanoseconds()) / cycleNS)
				lo := next
				for next < len(stream) && stream[next].AtCycle <= due {
					next++
				}
				if next == lo {
					continue
				}
				batch := stream[lo:next]
				nt := cur.ApplyAll(batch)
				if nt.Len() == 0 {
					continue
				}
				if r.ApplyUpdates(batch) != nil {
					return
				}
				cur = nt
			}
		}()
	}
	defer func() {
		close(stop)
		wg.Wait()
	}()

	rng := stats.NewRNG(c.Seed + uint64(repeat)*1000003 + 3)
	// Warm the LR-caches so the measurement sees steady state, not the
	// cold-start miss storm.
	for i := 0; i < c.WarmupLookups; i++ {
		if _, err := r.Lookup(i%c.LCs, tbl.RandomMatchedAddr(rng)); err != nil {
			return nil, err
		}
	}

	var lat []int64 // per-operation latency, ns
	opsPerTiming := 1
	if c.Batch > 1 {
		// Batched path: time each LookupBatchInto call and normalize by
		// the batch size. Percentiles are over per-call latencies
		// scaled per address, so tails reflect whole-batch stalls.
		opsPerTiming = c.Batch
		calls := c.Lookups / c.Batch
		if calls < 1 {
			calls = 1
		}
		ctx := context.Background()
		addrs := make([]ip.Addr, c.Batch)
		out := make([]router.Verdict, c.Batch)
		lat = make([]int64, calls)
		for i := 0; i < calls; i++ {
			for j := range addrs {
				addrs[j] = tbl.RandomMatchedAddr(rng)
			}
			t0 := time.Now()
			if slowdown > 0 {
				time.Sleep(slowdown * time.Duration(c.Batch))
			}
			if err := r.LookupBatchInto(ctx, i%c.LCs, addrs, out); err != nil {
				return nil, err
			}
			lat[i] = int64(time.Since(t0)) / int64(c.Batch)
		}
	} else {
		lat = make([]int64, c.Lookups)
		for i := 0; i < c.Lookups; i++ {
			a := tbl.RandomMatchedAddr(rng)
			t0 := time.Now()
			if slowdown > 0 {
				time.Sleep(slowdown)
			}
			if _, err := r.Lookup(i%c.LCs, a); err != nil {
				return nil, err
			}
			lat[i] = int64(time.Since(t0))
		}
	}

	var sum int64
	for _, v := range lat {
		sum += v
	}
	sorted := append([]int64(nil), lat...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	m := map[string]float64{
		"ns_per_op": float64(sum) / float64(len(lat)),
		"p50_ns":    float64(stats.PercentileInt64(sorted, 0.50)),
		"p90_ns":    float64(stats.PercentileInt64(sorted, 0.90)),
		"p99_ns":    float64(stats.PercentileInt64(sorted, 0.99)),
		"max_ns":    float64(sorted[len(sorted)-1]),
		"ops":       float64(len(lat) * opsPerTiming),
	}
	if c.UpdateRate > 0 {
		m["updates_applied"] = r.Metrics().Sum(router.MetricUpdateEvents)
	}
	if c.CorruptRate > 0 {
		m["corruptions_injected"] = r.Metrics().Sum(router.MetricCorruptions)
		m["scrub_repairs"] = r.Metrics().Sum(router.MetricScrubRepairs)
	}
	if c.SlowLC >= 0 || c.Hedge {
		// Gray() is zero-valued when the subsystem is off, so exposure
		// cells (slow set, hedge off) record zeros — the contrast the
		// Brownout experiment exists to show.
		g := r.Gray()
		m["gray_degrades"] = float64(g.Degrades)
		m["hedges"] = float64(g.Hedges)
		m["eject_served"] = float64(g.EjectServed)
	}
	return m, nil
}
