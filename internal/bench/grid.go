package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"time"

	"spal/internal/experiments"
	"spal/internal/metrics"
	"spal/internal/stats"
)

// Options configures one grid run.
type Options struct {
	Spec *GridSpec
	// OutDir receives records.csv, summary.csv, cells.json, figures/
	// and profiles/. Empty = no files written (results only).
	OutDir string
	// Profiles captures a CPU profile of the first measured repeat of
	// every cell plus a post-run heap profile, under OutDir/profiles.
	Profiles bool
	// SlowdownNS injects that many nanoseconds of sleep into every
	// timed router operation — a synthetic regression for proving the
	// compare gate trips. Zero in any honest run.
	SlowdownNS int64
	// Logf receives progress lines; nil = silent.
	Logf func(format string, args ...any)
}

// RepeatResult is one execution of one cell.
type RepeatResult struct {
	Repeat    int                `json:"repeat"`
	Warmup    bool               `json:"warmup,omitempty"`
	ElapsedMS float64            `json:"elapsed_ms"`
	Metrics   map[string]float64 `json:"metrics"`
	Resources map[string]float64 `json:"resources"`
}

// CellResult aggregates a cell's repeats. Summary covers measured
// repeats only (warmups excluded).
type CellResult struct {
	Name            string                   `json:"name"`
	Kind            string                   `json:"kind"`
	Params          map[string]string        `json:"params"`
	Repeats         []RepeatResult           `json:"repeats"`
	Summary         map[string]stats.Summary `json:"summary"`
	VarianceFlagged bool                     `json:"variance_flagged,omitempty"`
}

// RunResult is the machine-readable outcome of a whole grid.
type RunResult struct {
	Grid               string       `json:"grid"`
	Scale              string       `json:"scale"`
	Repeats            int          `json:"repeats"`
	WarmupRepeats      int          `json:"warmup_repeats"`
	VarianceWarnRelStd float64      `json:"variance_warn_rel_std"`
	SlowdownNS         int64        `json:"slowdown_ns,omitempty"`
	Cells              []CellResult `json:"cells"`
	Figures            []string     `json:"figures,omitempty"`
}

// primaryMetric is the latency metric the variance flag watches.
func primaryMetric(kind string) string {
	if kind == "sim" {
		return "mean_cycles"
	}
	return "ns_per_op"
}

func (o Options) logf(format string, args ...any) {
	if o.Logf != nil {
		o.Logf(format, args...)
	}
}

// Run executes every cell of the grid (warmup repeats, then measured
// repeats), captures per-repeat runtime resources, optionally profiles,
// regenerates the requested figures, and writes the record files.
func Run(o Options) (*RunResult, error) {
	s := o.Spec
	if s == nil {
		return nil, fmt.Errorf("bench: Options.Spec is nil")
	}
	if o.OutDir != "" {
		for _, d := range []string{o.OutDir, filepath.Join(o.OutDir, "figures")} {
			if err := os.MkdirAll(d, 0o755); err != nil {
				return nil, err
			}
		}
		if o.Profiles {
			if err := os.MkdirAll(filepath.Join(o.OutDir, "profiles"), 0o755); err != nil {
				return nil, err
			}
		}
	}

	res := &RunResult{
		Grid:               s.Name,
		Scale:              s.Scale,
		Repeats:            s.Repeats,
		WarmupRepeats:      s.WarmupRepeats,
		VarianceWarnRelStd: s.VarianceWarnRelStd,
		SlowdownNS:         o.SlowdownNS,
	}
	cells := s.Cells()
	for ci, cell := range cells {
		cr := CellResult{Name: cell.Name, Kind: cell.Kind, Params: cell.Params}
		total := s.WarmupRepeats + s.Repeats
		o.logf("cell %d/%d %s (%d warmup + %d measured)", ci+1, len(cells), cell.Name, s.WarmupRepeats, s.Repeats)
		for rep := 0; rep < total; rep++ {
			warm := rep < s.WarmupRepeats
			profile := o.Profiles && o.OutDir != "" && rep == s.WarmupRepeats
			rr, err := runOnce(cell, rep, warm, profile, o)
			if err != nil {
				return nil, fmt.Errorf("cell %s repeat %d: %w", cell.Name, rep, err)
			}
			cr.Repeats = append(cr.Repeats, rr)
		}
		cr.Summary = summarize(cr.Repeats)
		if sum, ok := cr.Summary[primaryMetric(cell.Kind)]; ok {
			cr.VarianceFlagged = sum.N > 1 && sum.RelStd() > s.VarianceWarnRelStd
			if cr.VarianceFlagged {
				o.logf("  variance flag: %s rel_std %.3f > %.3f",
					primaryMetric(cell.Kind), sum.RelStd(), s.VarianceWarnRelStd)
			}
		}
		res.Cells = append(res.Cells, cr)
	}

	for _, name := range s.Figures {
		run, _ := experiments.Get(name) // validated at load
		scale := experiments.Quick
		if s.Scale == "full" {
			scale = experiments.Full
		}
		o.logf("figure %s (scale=%s)", name, s.Scale)
		tbl, err := run(scale)
		if err != nil {
			return nil, fmt.Errorf("figure %s: %w", name, err)
		}
		if o.OutDir != "" {
			path := filepath.Join(o.OutDir, "figures", name+".csv")
			if err := os.WriteFile(path, []byte("# "+tbl.Title+"\n"+tbl.CSV()), 0o644); err != nil {
				return nil, err
			}
			res.Figures = append(res.Figures, path)
		}
	}

	if o.OutDir != "" {
		if err := writeRecords(o.OutDir, res); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// runOnce executes a single repeat with resource bookkeeping and
// optional CPU/heap profiling around the measured region.
func runOnce(cell Cell, rep int, warm, profile bool, o Options) (RepeatResult, error) {
	runtime.GC() // stable baseline so per-repeat GC deltas are comparable
	before := metrics.ReadProcess()

	var cpuFile *os.File
	if profile {
		f, err := os.Create(filepath.Join(o.OutDir, "profiles", profileName(cell.Name)+".cpu.pprof"))
		if err != nil {
			return RepeatResult{}, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return RepeatResult{}, err
		}
		cpuFile = f
	}

	start := time.Now()
	var m map[string]float64
	var err error
	switch cell.Kind {
	case "router":
		m, err = runRouterCell(cell.Router, rep, time.Duration(o.SlowdownNS))
	case "sim":
		m, err = runSimCell(cell.Sim, rep)
	default:
		err = fmt.Errorf("unknown cell kind %q", cell.Kind)
	}
	elapsed := time.Since(start)

	if cpuFile != nil {
		pprof.StopCPUProfile()
		cpuFile.Close()
	}
	if err != nil {
		return RepeatResult{}, err
	}
	if profile {
		f, err := os.Create(filepath.Join(o.OutDir, "profiles", profileName(cell.Name)+".heap.pprof"))
		if err != nil {
			return RepeatResult{}, err
		}
		runtime.GC() // heap profile of live objects after the run
		if err := pprof.WriteHeapProfile(f); err != nil {
			f.Close()
			return RepeatResult{}, err
		}
		f.Close()
	}

	after := metrics.ReadProcess()
	return RepeatResult{
		Repeat:    rep,
		Warmup:    warm,
		ElapsedMS: float64(elapsed) / 1e6,
		Metrics:   m,
		Resources: map[string]float64{
			"goroutines":      float64(after.Goroutines),
			"heap_bytes":      float64(after.HeapBytes),
			"live_objects":    float64(after.LiveObjects),
			"alloc_bytes":     float64(after.AllocBytes - before.AllocBytes),
			"gc_cycles":       float64(after.GCCycles - before.GCCycles),
			"gc_pause_ns":     after.GCPauseNS - before.GCPauseNS,
			"slowdown_ns_inj": float64(o.SlowdownNS),
		},
	}, nil
}

// profileName flattens a cell name into a filesystem-safe stem.
func profileName(cell string) string {
	r := strings.NewReplacer("/", "_", "=", "-", " ", "_")
	return r.Replace(cell)
}

// summarize folds the measured repeats into per-metric summaries.
func summarize(reps []RepeatResult) map[string]stats.Summary {
	byMetric := map[string][]float64{}
	for _, r := range reps {
		if r.Warmup {
			continue
		}
		for k, v := range r.Metrics {
			byMetric[k] = append(byMetric[k], v)
		}
	}
	out := make(map[string]stats.Summary, len(byMetric))
	for k, vs := range byMetric {
		out[k] = stats.Summarize(vs)
	}
	return out
}

// writeRecords emits the three machine-readable record files:
// records.csv (every repeat, long format), summary.csv (per-cell
// cross-repeat statistics), cells.json (the full RunResult).
func writeRecords(dir string, res *RunResult) error {
	var rec strings.Builder
	rec.WriteString("cell,kind,repeat,warmup,metric,value\n")
	for _, c := range res.Cells {
		for _, r := range c.Repeats {
			for _, k := range sortedKeys(r.Metrics) {
				fmt.Fprintf(&rec, "%s,%s,%d,%t,%s,%g\n", c.Name, c.Kind, r.Repeat, r.Warmup, k, r.Metrics[k])
			}
			for _, k := range sortedKeys(r.Resources) {
				fmt.Fprintf(&rec, "%s,%s,%d,%t,res.%s,%g\n", c.Name, c.Kind, r.Repeat, r.Warmup, k, r.Resources[k])
			}
		}
	}
	if err := os.WriteFile(filepath.Join(dir, "records.csv"), []byte(rec.String()), 0o644); err != nil {
		return err
	}

	var sum strings.Builder
	sum.WriteString("cell,kind,metric,n,mean,std,rel_std,min,max,variance_flagged\n")
	for _, c := range res.Cells {
		for _, k := range sortedSummaryKeys(c.Summary) {
			s := c.Summary[k]
			fmt.Fprintf(&sum, "%s,%s,%s,%d,%g,%g,%g,%g,%g,%t\n",
				c.Name, c.Kind, k, s.N, s.Mean, s.Std, s.RelStd(), s.Min, s.Max,
				c.VarianceFlagged && k == primaryMetric(c.Kind))
		}
	}
	if err := os.WriteFile(filepath.Join(dir, "summary.csv"), []byte(sum.String()), 0o644); err != nil {
		return err
	}

	f, err := os.Create(filepath.Join(dir, "cells.json"))
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	return enc.Encode(res)
}

func sortedKeys(m map[string]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sortedSummaryKeys(m map[string]stats.Summary) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
