package bench

import (
	"spal/internal/lpm/engines"
	"spal/internal/rtable"
	"spal/internal/sim"
	"spal/internal/trace"
)

// runSimCell executes one repeat of a simulator cell and returns its
// metric map, drawn from the same JSONResult the spalsim -json flag
// emits so harness records and CLI output never disagree. Repeats vary
// the seed (base + repeat index) so cross-repeat variance measures
// seed sensitivity rather than collapsing to zero on a deterministic
// simulator.
func runSimCell(c *SimCell, repeat int) (map[string]float64, error) {
	tbl := rtable.Synthesize(rtable.SynthConfig{
		N: c.TablePrefixes, NextHops: 16, NestProb: 0.35, Seed: 0x5e3d_0002,
	})
	cfg := sim.DefaultConfig(tbl)
	cfg.NumLCs = c.Psi
	cfg.PacketsPerLC = c.PacketsPerLC
	cfg.LookupCycles = c.LookupCycles
	cfg.Trace = trace.Preset(c.Trace)
	cfg.Seed = c.Seed + uint64(repeat)
	if c.CacheBlocks > 0 {
		cfg.Cache.Blocks = c.CacheBlocks
	}
	cfg.UpdatesPerSecond = c.UpdatesPerSec
	cfg.UpdateFullFlush = c.FullFlush
	cfg.CorruptRate = c.CorruptRate
	cfg.ScrubEveryCycles = c.ScrubEvery
	if c.CorruptRate > 0 {
		cfg.VerifyNextHops = true
	}
	if c.Engine != "" {
		b, err := engines.Lookup(c.Engine)
		if err != nil {
			return nil, err
		}
		cfg.Engine = b
	}

	r, err := sim.New(cfg)
	if err != nil {
		return nil, err
	}
	res, err := r.Run()
	if err != nil {
		return nil, err
	}
	j := res.JSONReport()
	m := map[string]float64{
		"mean_cycles":       j.MeanLookupCycles,
		"p50_cycles":        float64(j.P50Cycles),
		"p90_cycles":        float64(j.P90Cycles),
		"p95_cycles":        float64(j.P95Cycles),
		"p99_cycles":        float64(j.P99Cycles),
		"worst_cycles":      float64(j.WorstCycles),
		"hit_rate":          j.HitRate,
		"mpps_router":       j.DerivedMppsRouter,
		"goodput_mpps":      j.GoodputMppsRouter,
		"shed_fraction":     j.ShedFraction,
		"fabric_messages":   float64(j.FabricMessages),
		"packets_completed": float64(j.PacketsCompleted),
	}
	if c.UpdatesPerSec > 0 {
		m["churn_events"] = float64(j.ChurnEvents)
		m["churn_range_invalidations"] = float64(j.ChurnRangeInvalidations)
		m["churn_stale_fills"] = float64(j.ChurnStaleFills)
	}
	if c.CorruptRate > 0 {
		m["corruptions_injected"] = float64(j.CorruptionsInjected)
		m["scrub_repairs"] = float64(j.ScrubRepairs)
		m["wrong_verdicts"] = float64(j.WrongVerdicts)
	}
	return m, nil
}
