// Package spal is the public face of this repository: a from-scratch Go
// reproduction of "SPAL: A Speedy Packet Lookup Technique for
// High-Performance Routers" (Tzeng, ICPP 2004).
//
// SPAL fragments a BGP routing table into ψ roughly equal subsets — one
// per line card — using carefully chosen prefix bit positions, gives each
// line card a small LR-cache of lookup results, and routes cache misses
// over a low-latency fabric to the address's home line card. The package
// offers three levels of entry:
//
//   - Partition / SelectBits: the table-fragmentation algorithm itself;
//   - Simulate: the paper's trace-driven cycle simulator (Sec. 5), used by
//     the benchmarks that regenerate every figure;
//   - NewRouter: a working concurrent forwarding plane (goroutine per line
//     card) built from the same parts.
//
// Sub-packages under internal/ hold the substrates: the DP, Lulea, LC and
// 24/8 longest-prefix-matching engines, the LR-cache with its M/W bits and
// victim cache, synthetic BGP tables, and locality-calibrated traces.
package spal

import (
	"log/slog"
	"time"

	"spal/internal/cache"
	"spal/internal/ip"
	"spal/internal/lpm"
	"spal/internal/lpm/engines"
	"spal/internal/metrics"
	"spal/internal/partition"
	"spal/internal/router"
	"spal/internal/rtable"
	"spal/internal/sim"
	"spal/internal/trace"
	"spal/internal/tracing"
)

// Core re-exported types. Within this module the internal packages are
// importable directly; these aliases define the supported public surface.
type (
	// Addr is an IPv4 address in host order.
	Addr = ip.Addr
	// Prefix is an IPv4 prefix.
	Prefix = ip.Prefix
	// Table is an immutable routing-table snapshot.
	Table = rtable.Table
	// Route is one table entry.
	Route = rtable.Route
	// NextHop identifies an output line card.
	NextHop = rtable.NextHop
	// Partitioning is a computed table fragmentation.
	Partitioning = partition.Partitioning
	// Engine is a longest-prefix-matching structure.
	Engine = lpm.Engine
	// EngineBuilder constructs an Engine from a table.
	EngineBuilder = lpm.Builder
	// BatchEngine is an Engine that also resolves whole address slices in
	// one call (see LookupAll in internal/lpm for the generic fallback);
	// the router's batched FE sweep detects it dynamically.
	BatchEngine = lpm.BatchEngine
	// EngineResult is one BatchEngine lookup outcome.
	EngineResult = lpm.Result
	// CacheConfig is an LR-cache organization.
	CacheConfig = cache.Config
	// SimConfig configures a cycle-simulation run.
	SimConfig = sim.Config
	// SimResult is a run's outcome.
	SimResult = sim.Result
	// Router is the concurrent forwarding plane.
	Router = router.Router
	// RouterConfig configures a concurrent router (legacy surface; prefer
	// RouterOption with NewRouter).
	RouterConfig = router.Config
	// RouterOption is a functional option for NewRouter.
	RouterOption = router.Option
	// Verdict is a concurrent-router lookup outcome.
	Verdict = router.Verdict
	// ServedBy identifies where a lookup result came from.
	ServedBy = router.ServedBy
	// TracePreset names one of the paper's five trace workloads.
	TracePreset = trace.Preset
	// MetricsSnapshot is an immutable observability snapshot (from
	// Router.Metrics or SimResult.Snapshot): counters, gauges and latency
	// histograms with Delta arithmetic and a Prometheus text encoder.
	MetricsSnapshot = metrics.Snapshot
	// MetricsLabel is one metric dimension, e.g. {"lc", "3"}.
	MetricsLabel = metrics.Label
	// FaultInjector decides the fate of each inter-LC fabric message
	// (chaos testing; see SeededFaults).
	FaultInjector = router.FaultInjector
	// FaultConfig parameterizes SeededFaults.
	FaultConfig = router.FaultConfig
	// FaultDecision is one injector verdict: drop, delay and/or duplicate.
	FaultDecision = router.FaultDecision
	// FabricMessage describes the message a FaultInjector is deciding on.
	FabricMessage = router.FabricMessage
	// LCState is one line card's lifecycle state (see Router.LCStates,
	// Router.KillLC, Router.DrainLC, Router.RestoreLC).
	LCState = router.LCState
	// OverloadPolicy configures overload control: bounded inboxes, load
	// shedding, retry budgets, circuit breakers (see WithRouterOverload).
	OverloadPolicy = router.OverloadPolicy
	// ShedMode selects what admission does with a full inbox
	// (ShedDropNewest, ShedDropRemoteFirst, ShedBlock).
	ShedMode = router.ShedMode
	// LookupTrace is one lookup's end-to-end span record (from
	// Router.Traces when tracing is enabled; see WithRouterTraceSampling).
	LookupTrace = tracing.LookupTrace
	// TraceEvent is one span event inside a LookupTrace.
	TraceEvent = tracing.SpanEvent
	// TraceEventKind classifies a TraceEvent (arrival, probe, fabric_send,
	// fe_exec, verdict, ...).
	TraceEventKind = tracing.EventKind
	// Update is one incremental routing change (announce or withdraw);
	// feed batches to (*Router).ApplyUpdates or (*Table).ApplyAll.
	Update = rtable.Update
	// UpdateKind distinguishes Announce from Withdraw.
	UpdateKind = rtable.UpdateKind
	// UpdateStreamConfig parameterizes GenerateUpdates.
	UpdateStreamConfig = rtable.UpdateStreamConfig
	// RebalancePolicy governs the background partition rebalancer that
	// re-selects control bits when incremental updates drift replication
	// or per-LC skew past its thresholds (see WithRouterRebalance).
	RebalancePolicy = router.RebalancePolicy
	// ScrubPolicy configures the online integrity scrubber that samples
	// per-LC state against the canonical table (see WithRouterScrub).
	ScrubPolicy = router.ScrubPolicy
	// CorruptionPolicy configures the seeded state-corruption injector
	// (see WithRouterCorruption).
	CorruptionPolicy = router.CorruptionPolicy
	// IntegrityReport is the scrubber's cumulative view of detected and
	// repaired state damage (see Router.Integrity).
	IntegrityReport = router.IntegrityReport
	// LCIntegrity is one line card's row in an IntegrityReport.
	LCIntegrity = router.LCIntegrity
	// LinkFaults is a per-directed-link fabric fault matrix supporting
	// asymmetric drop/delay/jitter and sustained per-LC brownouts
	// (SlowLC); see NewLinkFaults.
	LinkFaults = router.LinkFaults
	// LinkFaultConfig parameterizes one directed link of a LinkFaults
	// matrix.
	LinkFaultConfig = router.LinkFaultConfig
	// GrayPolicy configures gray-failure immunity: per-home fabric RTT
	// scoring, the degraded signal, hedged remote lookups, and outlier
	// ejection (see WithRouterGray).
	GrayPolicy = router.GrayPolicy
	// GrayReport is the router's gray-failure snapshot (see Router.Gray).
	GrayReport = router.GrayReport
	// LCGrayStatus is one line card's row in a GrayReport.
	LCGrayStatus = router.LCGrayStatus
)

// Update kinds.
const (
	Announce = rtable.Announce
	Withdraw = rtable.Withdraw
)

// ServedBy values, re-exported for verdict classification.
const (
	ServedByCache  = router.ServedByCache
	ServedByFE     = router.ServedByFE
	ServedByRemote = router.ServedByRemote
	// ServedByFallback marks a verdict served by the router-wide read-only
	// full-table engine after the home LC stayed unreachable through the
	// whole retry budget.
	ServedByFallback = router.ServedByFallback
	// ServedByShed marks a lookup refused by overload control after
	// admission; synchronous Lookup calls surface it as ErrOverloaded.
	ServedByShed = router.ServedByShed
	// ServedByHedge marks a verdict the gray-failure plane served from
	// the fallback engine ahead of a slow fabric primary (hedge or
	// ejection; see WithRouterGray).
	ServedByHedge = router.ServedByHedge
)

// Shed modes for OverloadPolicy.Mode.
const (
	ShedDropNewest      = router.ShedDropNewest
	ShedDropRemoteFirst = router.ShedDropRemoteFirst
	ShedBlock           = router.ShedBlock
)

// ErrOverloaded is returned by Lookup on a router built
// WithRouterOverload when the lookup was shed instead of executed; the
// caller may retry later, ideally with backoff.
var ErrOverloaded = router.ErrOverloaded

// LC lifecycle states, re-exported for Router.LCStates.
const (
	LCHealthy     = router.LCHealthy
	LCSuspect     = router.LCSuspect
	LCDown        = router.LCDown
	LCDraining    = router.LCDraining
	LCQuarantined = router.LCQuarantined
)

// ParsePrefix parses CIDR notation ("10.0.0.0/8").
func ParsePrefix(s string) (Prefix, error) { return ip.ParsePrefix(s) }

// ParseAddr parses a dotted-quad address.
func ParseAddr(s string) (Addr, error) { return ip.ParseAddr(s) }

// NewTable builds a routing table from routes (deduplicating by prefix).
func NewTable(routes []Route) *Table { return rtable.New(routes) }

// SynthesizeTable generates a synthetic BGP-like table with n prefixes.
func SynthesizeTable(n int, seed uint64) *Table { return rtable.Small(n, seed) }

// RT1 synthesizes the stand-in for the paper's 41,709-prefix FUNET table.
func RT1() *Table { return rtable.RT1() }

// RT2 synthesizes the stand-in for the paper's 140,838-prefix AS1221 table.
func RT2() *Table { return rtable.RT2() }

// Partition fragments tbl for numLCs line cards per the paper's two
// bit-selection criteria.
func Partition(tbl *Table, numLCs int) *Partitioning {
	return partition.Partition(tbl, numLCs)
}

// SelectBits returns the eta control-bit positions the criteria choose.
func SelectBits(tbl *Table, eta int) []int { return partition.SelectBits(tbl, eta) }

// Engines lists the available matching-structure builders by name
// (a fresh copy of the shared registry in internal/lpm/engines).
func Engines() map[string]EngineBuilder { return engines.Builders() }

// EngineNames returns the registered engine names, sorted.
func EngineNames() []string { return engines.Names() }

// DefaultCacheConfig is the paper's standard LR-cache: 4K blocks, 4-way,
// 8 victim blocks, γ=50%, LRU.
func DefaultCacheConfig() CacheConfig { return cache.DefaultConfig() }

// DefaultSimConfig is the paper's headline run: ψ=16 LCs at 40 Gbps,
// 40-cycle FE lookups, 4K-block caches.
func DefaultSimConfig(tbl *Table) SimConfig { return sim.DefaultConfig(tbl) }

// Simulate builds and runs one cycle simulation.
func Simulate(cfg SimConfig) (*SimResult, error) {
	r, err := sim.New(cfg)
	if err != nil {
		return nil, err
	}
	return r.Run()
}

// NewRouter starts a concurrent SPAL forwarding plane over tbl.
// Defaults: one line card, reference engine, caches off. Example:
//
//	r, err := spal.NewRouter(tbl, spal.WithLCs(16), spal.WithDefaultRouterCache())
//
// The router exposes an immutable observability snapshot via
// (*Router).Metrics; see MetricsSnapshot.
func NewRouter(tbl *Table, opts ...RouterOption) (*Router, error) {
	return router.New(tbl, opts...)
}

// NewRouterFromConfig starts a router from an explicit RouterConfig.
//
// Deprecated: compatibility shim for the pre-option API; use NewRouter
// with functional options.
func NewRouterFromConfig(cfg RouterConfig) (*Router, error) { return router.NewWithConfig(cfg) }

// WithLCs sets ψ, the number of line cards.
func WithLCs(n int) RouterOption { return router.WithLCs(n) }

// WithRouterCache enables LR-caches with the given organization.
func WithRouterCache(cc CacheConfig) RouterOption { return router.WithCache(cc) }

// WithDefaultRouterCache enables the paper-standard LR-cache.
func WithDefaultRouterCache() RouterOption { return router.WithDefaultCache() }

// WithRouterEngine sets the matching-structure builder every LC uses.
// Most callers want WithRouterEngineName, which resolves a registry name
// and is validated at construction.
func WithRouterEngine(b EngineBuilder) RouterOption { return router.WithEngine(b) }

// WithRouterEngineName selects the per-LC engine by registry name
// ("flat", "lulea", "stride24", ...; see EngineNames). NewRouter fails
// with an error listing the valid names when the name is unknown.
func WithRouterEngineName(name string) RouterOption { return router.WithEngineName(name) }

// WithRouterCacheShards splits each LC's LR-cache into n line-padded
// shards selected by the low address bits, keeping total capacity
// unchanged. n must be a power of two that leaves the per-shard
// geometry valid; 0 and 1 mean unsharded.
func WithRouterCacheShards(n int) RouterOption { return router.WithCacheShards(n) }

// WithRouterBatchCoalescing toggles the pooled-descriptor batch data
// plane behind (*Router).LookupBatchInto: one fabric message per
// destination LC per batch instead of one per address. NewRouter
// defaults it on; pass false to force per-address submission.
func WithRouterBatchCoalescing(on bool) RouterOption { return router.WithBatchCoalescing(on) }

// WithRouterFaultInjector installs a chaos hook on the fabric message
// path; see SeededFaults for a deterministic injector.
func WithRouterFaultInjector(fi FaultInjector) RouterOption { return router.WithFaultInjector(fi) }

// WithRouterRequestTimeout sets the per-attempt deadline on fabric lookup
// requests (default 50ms).
func WithRouterRequestTimeout(d time.Duration) RouterOption { return router.WithRequestTimeout(d) }

// WithRouterMaxRetries bounds timed-out request re-sends before a lookup
// degrades to the full-table fallback engine (default 3).
func WithRouterMaxRetries(n int) RouterOption { return router.WithMaxRetries(n) }

// WithRouterHealthThresholds sets the LC lifecycle windows: an LC with no
// recorded heartbeat for suspectAfter is demoted to Suspect, and a crashed
// LC silent for downAfter is declared Down and its partition re-homed onto
// the survivors (defaults: 1x and 2x the request timeout).
func WithRouterHealthThresholds(suspectAfter, downAfter time.Duration) RouterOption {
	return router.WithHealthThresholds(suspectAfter, downAfter)
}

// WithRouterTraceSampling enables per-lookup distributed tracing with
// head-based probabilistic sampling (rate in 0..1). Interesting lookups
// — retried, re-homed, fallback-served, deadline-expired — are captured
// even at rate 0. Completed traces land in a bounded journal exposed by
// (*Router).Traces and the /debug/spal/traces endpoint.
func WithRouterTraceSampling(rate float64) RouterOption { return router.WithTraceSampling(rate) }

// WithRouterTraceLogger emits one structured slog record per finished
// trace; implies tracing.
func WithRouterTraceLogger(l *slog.Logger) RouterOption { return router.WithLogger(l) }

// WithRouterTraceJournal sizes the completed-trace ring behind
// (*Router).Traces (default 1024); implies tracing.
func WithRouterTraceJournal(size int) RouterOption { return router.WithTraceJournal(size) }

// WithRouterOverload enables overload control: bounded per-LC inboxes
// with shed-at-arrival admission (Lookup returns ErrOverloaded instead
// of queueing without limit), an adaptive retry budget, and per-home-LC
// circuit breakers that short-circuit doomed fabric sends to the
// fallback engine. Zero policy fields select defaults; see
// OverloadPolicy.
func WithRouterOverload(p OverloadPolicy) RouterOption { return router.WithOverload(p) }

// WithRouterRebalance enables the background partition rebalancer: when
// ApplyUpdates drifts the partitioning's replication factor or per-LC
// size skew past the policy's thresholds, the router re-selects control
// bits over the current table and runs the full two-phase swap. Pass
// DefaultRebalancePolicy() for the default thresholds.
func WithRouterRebalance(p RebalancePolicy) RouterOption { return router.WithRebalance(p) }

// DefaultRebalancePolicy returns the rebalancer's default thresholds
// (enabled, 15% replication growth, 1.0 relative size skew, 1 s minimum
// interval between rebalances).
func DefaultRebalancePolicy() RebalancePolicy { return router.DefaultRebalancePolicy() }

// WithRouterScrub enables the online integrity scrubber: every Interval
// it samples SamplesPerLC prefixes per line card with a rotating cursor,
// recomputes authoritative verdicts from the canonical routing table,
// compares them against the live engine walk and the resident cache
// entries, evicts mismatched cache entries, and quarantines (and, with
// AutoRepair, rebuilds) a line card whose engine keeps failing audits.
// Pass DefaultScrubPolicy() for defaults.
func WithRouterScrub(p ScrubPolicy) RouterOption { return router.WithScrub(p) }

// DefaultScrubPolicy returns the scrubber's defaults: enabled, interval
// of 4 health ticks, 32 samples per LC per cycle, quarantine after 1
// confirmed engine mismatch, auto-repair on.
func DefaultScrubPolicy() ScrubPolicy { return router.DefaultScrubPolicy() }

// WithRouterCorruption installs the seeded state-corruption injector:
// engine verdict flips over poisoned address ranges, wrong values stored
// on cache fills, and dropped range invalidations, each drawn from a
// counter-keyed hash of the seed so a corruption schedule replays
// exactly. For chaos testing the scrub plane; never on by default.
func WithRouterCorruption(p CorruptionPolicy) RouterOption { return router.WithCorruption(p) }

// GenerateUpdates synthesizes a seeded BGP-style churn stream over tbl:
// announces of new and existing prefixes mixed with withdraws, stamped
// with arrival cycles at cfg.RatePerSecond. The stream is generated
// against the evolving table, so withdraws always name live prefixes.
func GenerateUpdates(tbl *Table, cfg UpdateStreamConfig) []Update {
	return rtable.GenerateUpdates(tbl, cfg)
}

// SeededFaults builds a deterministic fault injector: every fabric
// message independently draws drop/duplicate/delay outcomes from a
// counter-keyed hash of cfg.Seed, so a chaos run is reproducible from its
// seed alone.
func SeededFaults(cfg FaultConfig) FaultInjector { return router.SeededFaults(cfg) }

// NewLinkFaults builds an empty per-directed-link fault matrix drawing
// its decisions from a SeededFaults-style counter stream. Configure
// individual links with SetLink (asymmetric drop/delay/jitter — A→B can
// be partitioned while B→A is clean) or brown out a whole line card with
// SlowLC, then install the matrix via
// WithRouterFaultInjector(lf.Injector()).
func NewLinkFaults(seed uint64) *LinkFaults { return router.NewLinkFaults(seed) }

// WithRouterGray enables the gray-failure subsystem: per-home-LC fabric
// round-trip scoring against the fleet median driving a degraded health
// signal, hedged remote lookups answered from the full-table fallback
// engine after an adaptive (or fixed) hedge delay, and outlier ejection
// that steers cacheable traffic off a browned-out line card until its
// score recovers. Pass DefaultGrayPolicy() for the defaults.
func WithRouterGray(p GrayPolicy) RouterOption { return router.WithGray(p) }

// DefaultGrayPolicy returns the gray-failure defaults: detection, hedging
// and ejection all enabled (64-sample windows, degrade at 3× the fleet
// median p50 for 3 cycles, adaptive hedge delay of 2× the fleet p99,
// hedge budget of 0.5 tokens per successful round trip, burst 32).
func DefaultGrayPolicy() GrayPolicy { return router.DefaultGrayPolicy() }

// TracePresets lists the five paper traces.
func TracePresets() []TracePreset { return trace.Presets }
