// IPv6 example: the paper's closing claim is that SPAL "is feasibly
// applicable to IPv6". This example partitions a synthetic IPv6 prefix set
// across line cards with the same two criteria and verifies the home-LC
// invariant over the 128-bit address space.
package main

import (
	"fmt"

	"spal/internal/ip"
	"spal/internal/lpm/bintrie6"
	"spal/internal/partition"
	"spal/internal/stats"
)

func main() {
	routes := synthesizeV6(5000, 21)
	fmt.Printf("IPv6 table: %d prefixes\n", len(routes))

	const numLCs = 8
	p := partition.Partition6(routes, numLCs)
	fmt.Printf("control bits (of 0..127): %v\n", p.Bits)

	// One binary trie per line card over its partition — the per-LC SRAM
	// saving is the paper's IPv6 motivation.
	whole := bintrie6.New(toTrieRoutes(routes))
	tries := make([]*bintrie6.Trie, numLCs)
	for lc := 0; lc < numLCs; lc++ {
		tries[lc] = bintrie6.New(toTrieRoutes(p.Routes(lc)))
		fmt.Printf("LC %d: %5d prefixes, %4d KB trie\n",
			lc, len(p.Routes(lc)), tries[lc].MemoryBytes()/1024)
	}
	fmt.Printf("unpartitioned trie: %d KB\n", whole.MemoryBytes()/1024)

	// Route some addresses: home LC trie lookup must equal whole-table
	// lookup.
	rng := stats.NewRNG(5)
	checked, agreed := 0, 0
	for i := 0; i < 2000; i++ {
		r := routes[rng.Intn(len(routes))]
		a := r.Prefix.Value
		a.Lo |= rng.Uint64() & ^ip.Mask6(r.Prefix.Len).Lo // randomize host bits
		home := p.HomeLC(a)
		gotNH, _, gotOK := tries[home].Lookup(a)
		wantNH, wantOK := lookupAll(routes, a)
		checked++
		if gotOK == wantOK && (!gotOK || gotNH == wantNH) {
			agreed++
		}
	}
	fmt.Printf("home-LC invariant: %d/%d lookups agree with the full table\n", agreed, checked)

	a, _ := ip.ParsePrefix6("2001:0db8:0000:0000:0000:0000:0000:0001/128")
	fmt.Printf("example: %s homes at LC %d\n", ip.FormatAddr6(a.Value), p.HomeLC(a.Value))
}

func toTrieRoutes(rs []partition.Route6) []bintrie6.Route {
	out := make([]bintrie6.Route, len(rs))
	for i, r := range rs {
		out[i] = bintrie6.Route{Prefix: r.Prefix, NextHop: r.NextHop}
	}
	return out
}

// synthesizeV6 draws global-unicast-shaped prefixes (/16../64 under
// 2000::/3) with random next hops.
func synthesizeV6(n int, seed uint64) []partition.Route6 {
	rng := stats.NewRNG(seed)
	routes := make([]partition.Route6, 0, n)
	for i := 0; i < n; i++ {
		l := uint8(16 + rng.Intn(49))
		v := ip.Addr6{Hi: 0x2000000000000000 | rng.Uint64()>>3, Lo: rng.Uint64()}
		routes = append(routes, partition.Route6{
			Prefix:  ip.Prefix6{Value: v, Len: l}.Canon(),
			NextHop: uint16(rng.Intn(16)),
		})
	}
	return routes
}

func lookupAll(routes []partition.Route6, a ip.Addr6) (uint16, bool) {
	bestLen := -1
	var nh uint16
	for _, r := range routes {
		// >= so later duplicates win, matching trie replace-on-insert.
		if r.Prefix.Matches(a) && int(r.Prefix.Len) >= bestLen {
			bestLen = int(r.Prefix.Len)
			nh = r.NextHop
		}
	}
	return nh, bestLen >= 0
}
