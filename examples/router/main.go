// Router example: run the concurrent goroutine-per-LC SPAL forwarding
// plane, drive it with a locality-bearing workload from every line card,
// and show how results migrate from FE executions to cache hits — then
// apply a routing-table update and keep forwarding.
package main

import (
	"fmt"
	"log"
	"sync"

	"spal"
	"spal/internal/rtable"
	"spal/internal/stats"
	"spal/internal/trace"
)

func main() {
	table := spal.SynthesizeTable(30000, 7)
	const numLCs = 8

	r, err := spal.NewRouter(table, spal.WithLCs(numLCs), spal.WithDefaultRouterCache())
	if err != nil {
		log.Fatal(err)
	}
	defer r.Stop()
	fmt.Printf("router up: %d LCs, control bits %v\n", r.NumLCs(), r.PartitionBits())

	// One traffic goroutine per LC, sharing a Zipf destination pool so hot
	// destinations appear everywhere (what the LR-caches exploit).
	cfg := trace.Config{PoolSize: 4000, ZipfS: 1.1, MeanTrain: 4, Seed: 3}
	pool := trace.NewPool(table, cfg)
	var wg sync.WaitGroup
	const perLC = 20000
	for lc := 0; lc < numLCs; lc++ {
		wg.Add(1)
		go func(lc int) {
			defer wg.Done()
			src := trace.NewSynthetic(pool, cfg, uint64(lc))
			for i := 0; i < perLC; i++ {
				addr, _ := src.Next()
				if _, err := r.Lookup(lc, addr); err != nil {
					log.Printf("LC %d: %v", lc, err)
					return
				}
			}
		}(lc)
	}
	wg.Wait()

	var lookups, hits, fe, req int64
	for _, s := range r.Stats() {
		lookups += s.Lookups.Load()
		hits += s.CacheHits.Load()
		fe += s.FEExecs.Load()
		req += s.RequestsSent.Load()
	}
	fmt.Printf("forwarded %d packets: %.1f%% cache hits, %d FE executions, %d fabric requests\n",
		lookups, 100*float64(hits)/float64(lookups), fe, req)

	// A BGP update arrives: swap the table in-place; caches flush, the
	// plane keeps running.
	updated := table.Apply(rtable.Update{
		Kind:  rtable.Announce,
		Route: rtable.Route{Prefix: mustPrefix("10.0.0.0/8"), NextHop: 9},
	})
	if err := r.UpdateTable(updated); err != nil {
		log.Fatal(err)
	}
	v, err := r.Lookup(0, mustAddr("10.1.2.3"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after update: 10.1.2.3 -> next hop %d (served by %s)\n", v.NextHop, v.ServedBy)

	// Throughput spot check: replay a hot address everywhere.
	rng := stats.NewRNG(5)
	hot := table.Routes()[rng.Intn(table.Len())].Prefix.FirstAddr()
	for lc := 0; lc < numLCs; lc++ {
		v, _ := r.Lookup(lc, hot)
		fmt.Printf("LC %d: hot address -> nh %d via %s\n", lc, v.NextHop, v.ServedBy)
	}
}

func mustPrefix(s string) spal.Prefix {
	p, err := spal.ParsePrefix(s)
	if err != nil {
		panic(err)
	}
	return p
}

func mustAddr(s string) spal.Addr {
	a, err := spal.ParseAddr(s)
	if err != nil {
		panic(err)
	}
	return a
}
