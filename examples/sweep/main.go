// Sweep example: programmatically reproduce a miniature Fig. 6 — mean
// lookup time versus the number of line cards — using the public Simulate
// API, and compare SPAL against the two baselines the paper discusses.
package main

import (
	"fmt"
	"log"

	"spal"
)

func main() {
	table := spal.SynthesizeTable(40000, 11)

	fmt.Println("mini Fig. 6: mean lookup time (5 ns cycles) vs psi, beta=4K, gamma=50%")
	fmt.Printf("%-6s  %-12s  %-18s  %-14s\n", "psi", "SPAL", "cache-only(psi=1)", "conventional")
	for _, psi := range []int{1, 2, 4, 8, 16} {
		spalMean := run(table, psi, true, true)
		cacheOnly := run(table, psi, true, false)
		// The paper scores the conventional router at its optimistic
		// no-queueing bound: the full 40-cycle FE time per packet. (Its
		// measured latency under 40 Gbps load diverges — the FE saturates
		// at 5 Mpps while ~20 Mpps arrive — which is exactly SPAL's point.)
		fmt.Printf("%-6d  %-12.2f  %-18.2f  %-14s\n", psi, spalMean, cacheOnly, ">= 40 (bound)")
	}
	fmt.Println("\nSPAL improves with psi; cache-only is psi-independent;")
	fmt.Println("the conventional router pays at least the full FE latency per packet.")
}

func run(table *spal.Table, psi int, cacheOn, partitionOn bool) float64 {
	cfg := spal.DefaultSimConfig(table)
	cfg.NumLCs = psi
	cfg.PacketsPerLC = 30000
	cfg.CacheEnabled = cacheOn
	cfg.PartitionEnabled = partitionOn
	res, err := spal.Simulate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	return res.MeanLookupCycles
}
