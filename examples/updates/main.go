// Updates example: model BGP churn against a SPAL router. A synthetic
// update stream (announce/withdraw at the paper's ~20-100 events/s) is
// applied to the routing table; the concurrent router swaps tables live
// while traffic flows, and the cycle simulator quantifies what the
// paper's flush-on-update policy costs at increasing update rates.
package main

import (
	"fmt"
	"log"
	"sync"
	"sync/atomic"

	"spal"
	"spal/internal/rtable"
	"spal/internal/trace"
)

func main() {
	table := spal.SynthesizeTable(20000, 3)

	// Part 1: live updates on the concurrent router under load.
	fmt.Println("-- concurrent router under update churn --")
	r, err := spal.NewRouter(table, spal.WithLCs(4), spal.WithDefaultRouterCache())
	if err != nil {
		log.Fatal(err)
	}
	defer r.Stop()

	updates := rtable.GenerateUpdates(table, rtable.UpdateStreamConfig{
		RatePerSecond: 100,
		CycleNS:       5,
		Duration:      40_000_000, // 0.2 s of simulated churn
		WithdrawProb:  0.3,
		Seed:          7,
	})
	fmt.Printf("update stream: %d events\n", len(updates))

	var stop, lookups atomic.Int64
	cfg := trace.Config{PoolSize: 3000, ZipfS: 1.1, MeanTrain: 4, Seed: 5}
	pool := trace.NewPool(table, cfg)
	var wg sync.WaitGroup
	for lc := 0; lc < 4; lc++ {
		wg.Add(1)
		go func(lc int) {
			defer wg.Done()
			src := trace.NewSynthetic(pool, cfg, uint64(lc))
			for stop.Load() == 0 {
				a, _ := src.Next()
				if _, err := r.Lookup(lc, a); err != nil {
					return
				}
				lookups.Add(1)
			}
		}(lc)
	}

	current := table
	for _, u := range updates {
		current = current.Apply(u)
	}
	// Apply churn in a few table swaps (a real control plane batches).
	steps := 5
	snapshot := table
	for s := 1; s <= steps; s++ {
		snapshot = applyRange(snapshot, updates, s-1, steps)
		if err := r.UpdateTable(snapshot); err != nil {
			log.Fatal(err)
		}
	}
	stop.Store(1)
	wg.Wait()
	fmt.Printf("served %d lookups across %d table swaps without stopping\n",
		lookups.Load(), steps)

	// Part 2: the cycle simulator prices the flush policy.
	fmt.Println("\n-- flush-on-update cost (cycle simulator) --")
	// The window simulated here is ~1 ms (100k packets at 40 Gbps), so the
	// paper's 50 ms update spacing would never fire; the sweep uses
	// exaggerated kHz-class rates to make the flush cost visible. See
	// `spal-bench -exp updates` for the full-length version.
	for _, tc := range []struct {
		label string
		every int64
	}{
		{"no updates", 0},
		{"1k updates/s", 200_000},
		{"4k updates/s", 50_000},
	} {
		simCfg := spal.DefaultSimConfig(table)
		simCfg.NumLCs = 8
		simCfg.PacketsPerLC = 100000
		simCfg.FlushEveryCycles = tc.every
		res, err := spal.Simulate(simCfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s mean lookup %.2f cycles, hit rate %.4f\n",
			tc.label, res.MeanLookupCycles, res.HitRate)
	}
}

// applyRange applies the s-th of n slices of the update stream.
func applyRange(t *rtable.Table, ups []rtable.Update, s, n int) *rtable.Table {
	lo, hi := len(ups)*s/n, len(ups)*(s+1)/n
	for _, u := range ups[lo:hi] {
		t = t.Apply(u)
	}
	return t
}
