// Quickstart: partition a routing table for a 4-line-card router, build a
// Lulea forwarding table for each LC, and look up a few destinations the
// way a SPAL home line card would.
package main

import (
	"fmt"
	"log"

	"spal"
)

func main() {
	// A synthetic BGP-like table (use spal.RT2() for the paper-sized one).
	table := spal.SynthesizeTable(20000, 1)
	fmt.Printf("routing table: %d prefixes\n", table.Len())

	// Fragment it for 4 line cards per the paper's two criteria.
	const numLCs = 4
	part := spal.Partition(table, numLCs)
	fmt.Printf("control bits:  %v\n", part.Bits)
	st := part.Stats()
	fmt.Printf("partitions:    %v (replication %.2f)\n", st.Sizes, st.Replication)

	// Build one Lulea trie per line card — each a fraction of the full
	// table's size.
	build := spal.Engines()["lulea"]
	engines := make([]spal.Engine, numLCs)
	for lc := 0; lc < numLCs; lc++ {
		engines[lc] = build(part.Table(lc))
		fmt.Printf("LC %d: %d prefixes, %d KB Lulea trie\n",
			lc, part.Table(lc).Len(), engines[lc].MemoryBytes()/1024)
	}
	whole := build(table)
	fmt.Printf("unpartitioned Lulea trie: %d KB\n", whole.MemoryBytes()/1024)

	// Route a few packets: find the home LC, run LPM there.
	for _, s := range []string{"10.1.2.3", "192.168.7.9", "4.4.4.4"} {
		addr, err := spal.ParseAddr(s)
		if err != nil {
			log.Fatal(err)
		}
		home := part.HomeLC(addr)
		nh, accesses, ok := engines[home].Lookup(addr)
		if !ok {
			fmt.Printf("%-14s home=LC%d  no route\n", s, home)
			continue
		}
		fmt.Printf("%-14s home=LC%d  next hop %d (%d memory accesses)\n",
			s, home, nh, accesses)
	}
}
