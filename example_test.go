package spal_test

import (
	"fmt"

	"spal"
	"spal/internal/cache"
	"spal/internal/ip"
	"spal/internal/partition"
	"spal/internal/rtable"
	"spal/internal/trace"
)

// ExamplePartition shows the core SPAL operation: fragment a routing
// table and find an address's home line card.
func ExamplePartition() {
	table := spal.NewTable([]spal.Route{
		{Prefix: mustPrefix("10.0.0.0/8"), NextHop: 1},
		{Prefix: mustPrefix("10.128.0.0/9"), NextHop: 2},
		{Prefix: mustPrefix("192.168.0.0/16"), NextHop: 3},
		{Prefix: mustPrefix("172.16.0.0/12"), NextHop: 4},
	})
	p := spal.Partition(table, 2)

	addr, _ := spal.ParseAddr("10.200.0.1")
	home := p.HomeLC(addr)
	nh, ok := p.Table(home).LookupLinear(addr)
	fmt.Println(len(p.Bits), ok, nh)
	// Output: 1 true 2
}

// ExampleSimulate runs the paper's cycle simulator on a small setup.
func ExampleSimulate() {
	cfg := spal.DefaultSimConfig(spal.SynthesizeTable(5000, 1))
	cfg.NumLCs = 4
	cfg.PacketsPerLC = 2000
	res, err := spal.Simulate(cfg)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(res.PacketsCompleted, res.MeanLookupCycles < 40)
	// Output: 8000 true
}

// ExampleNewRouter drives the concurrent forwarding plane.
func ExampleNewRouter() {
	table := spal.NewTable([]spal.Route{
		{Prefix: mustPrefix("10.0.0.0/8"), NextHop: 7},
	})
	r, err := spal.NewRouter(table, spal.WithLCs(2), spal.WithDefaultRouterCache())
	if err != nil {
		fmt.Println(err)
		return
	}
	defer r.Stop()

	addr, _ := spal.ParseAddr("10.1.2.3")
	v, _ := r.Lookup(0, addr)
	fmt.Println(v.OK, v.NextHop)
	// Output: true 7
}

// ExampleEngines builds a Lulea trie and performs a lookup, reporting the
// modelled memory accesses the paper's 40-cycle FE time derives from.
func ExampleEngines() {
	table := spal.NewTable([]spal.Route{
		{Prefix: mustPrefix("10.0.0.0/8"), NextHop: 1},
		{Prefix: mustPrefix("10.1.0.0/16"), NextHop: 2},
	})
	engine := spal.Engines()["lulea"](table)

	addr, _ := spal.ParseAddr("10.1.2.3")
	nh, accesses, ok := engine.Lookup(addr)
	fmt.Println(ok, nh, accesses)
	// Output: true 2 4
}

// ExampleCache demonstrates the LR-cache's miss-coalescing protocol: a
// miss reserves a W block, later packets park on it, and the fill
// releases them all.
func ExampleCache() {
	c := cache.New(cache.DefaultConfig())
	addr := ip.Addr(0x0a000001)

	fmt.Println(c.Probe(addr).Kind == cache.Miss)
	c.RecordMiss(addr, cache.LOC, 100)
	fmt.Println(c.Probe(addr).Kind == cache.HitWaiting)
	c.AddWaiter(addr, 101)
	released := c.Fill(addr, 7, cache.LOC)
	fmt.Println(released)
	fmt.Println(c.Probe(addr).NextHop)
	// Output:
	// true
	// true
	// [100 101]
	// 7
}

// ExampleNewPool builds a locality-bearing trace stream the way the
// simulator does.
func ExampleNewPool() {
	table := rtable.Small(1000, 1)
	cfg := trace.Config{PoolSize: 100, ZipfS: 1.1, MeanTrain: 4, Seed: 1}
	pool := trace.NewPool(table, cfg)
	src := trace.NewSynthetic(pool, cfg, 0)

	addrs := trace.Slice(src, 10000)
	fmt.Println(len(addrs), trace.StackHitRatio(addrs, 64) > 0.5)
	// Output: 10000 true
}

// ExampleSelectBits runs the paper's Sec. 3.1 worked example: seven
// simplified prefixes for which bits {b0, b4} beat bits {b2, b4}.
func ExampleSelectBits() {
	mk := func(bits string, nh spal.NextHop) spal.Route {
		var v uint32
		for i, c := range bits {
			if c == '1' {
				v |= 1 << (31 - i)
			}
		}
		return spal.Route{Prefix: spal.Prefix{Value: v, Len: uint8(len(bits))}, NextHop: nh}
	}
	table := spal.NewTable([]spal.Route{
		mk("101", 1), mk("1011", 2), mk("01", 3), mk("001110", 4),
		mk("10010011", 5), mk("10011", 6), mk("011001", 7),
	})
	good := partition.WithBits(table, 4, []int{0, 4}).Stats()
	bad := partition.WithBits(table, 4, []int{2, 4}).Stats()
	fmt.Println(good.Max, bad.Max)
	// Output: 3 4
}

func mustPrefix(s string) spal.Prefix {
	p, err := spal.ParsePrefix(s)
	if err != nil {
		panic(err)
	}
	return p
}
