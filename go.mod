module spal

go 1.22
